(* ncg_served: the persistent sweep daemon (and, with --worker, the
   external worker process that feeds off one).

   Daemon mode owns the content-addressed store and the durable work
   queue; clients (ncg_submit) submit sweep specs over newline-delimited
   JSON, workers lease cells, and every structured event is streamed to
   subscribers (ncg_top --events unix:PATH). See docs/SERVICE.md. *)

open Cmdliner
module Json = Ncg_obs.Json
module Protocol = Ncg_service.Protocol
module Scheduler = Ncg_service.Scheduler
module Server = Ncg_service.Server

let install_fault_plan spec seed =
  match spec with
  | None -> ()
  | Some spec -> (
      match Ncg_fault.Inject.parse_plan ~seed spec with
      | Ok plan -> Ncg_fault.Inject.install plan
      | Error msg ->
          Printf.eprintf "ncg_served: --fault-plan: %s\n%!" msg;
          exit 2)

let parse_addr_or_die s =
  match Protocol.parse_addr s with
  | Ok addr -> addr
  | Error msg ->
      Printf.eprintf "ncg_served: %s\n%!" msg;
      exit 2

(* --- Worker mode --------------------------------------------------------- *)

(* A worker process is a protocol client: lease, compute, complete (or
   fail), repeat. It never opens the store — results travel back over
   the socket and the daemon is the only writer. EOF from the daemon
   (shutdown) or "draining": true ends the loop.

   A second connection carries heartbeats: a thread pings every
   --heartbeat-ms so the daemon knows the worker is alive even while a
   long cell computes on the main connection. Ping replies also deliver
   lease revocations — if the daemon revoked the cell currently
   computing (client cancel), the heartbeat thread trips its
   cancellation flag and the next cooperative checkpoint abandons it. *)

(* The cell currently computing, shared with the heartbeat thread:
   (task id, cancellation flag). *)
let current_task : (int * bool Atomic.t) option Atomic.t = Atomic.make None

let heartbeat_loop addr name heartbeat_ms stop =
  match Protocol.connect addr with
  | exception Unix.Unix_error _ -> ()
  | ic, oc ->
      let rpc req =
        try
          Protocol.send_line oc (Protocol.request_to_json req);
          Protocol.recv_line ic
        with Sys_error _ | Unix.Unix_error _ -> Error "connection lost"
      in
      (* Plain hello, not a worker hello: this connection holds no
         leases, so its loss must not requeue anything. *)
      let _ = rpc (Protocol.Hello { client = name ^ "/hb"; worker = false }) in
      let rec loop () =
        if Atomic.get stop then ()
        else begin
          Unix.sleepf (float_of_int heartbeat_ms /. 1000.);
          if Atomic.get stop then ()
          else
            match rpc (Protocol.Ping { worker = name }) with
            | Ok (Some j) ->
                (match Protocol.response_of_json j with
                | Ok (Protocol.Resp_ok fields) ->
                    (match List.assoc_opt "revoked" fields with
                    | Some (Json.List ids) -> (
                        let ids =
                          List.filter_map
                            (function Json.Int i -> Some i | _ -> None)
                            ids
                        in
                        match Atomic.get current_task with
                        | Some (task_id, flag) when List.mem task_id ids ->
                            Atomic.set flag true
                        | _ -> ())
                    | _ -> ())
                | Ok (Protocol.Resp_error _) | Error _ ->
                    (* dropped beat (e.g. injected heartbeat fault):
                       keep pinging, the daemon's monitor decides *)
                    ());
                loop ()
            | Ok None | Error _ -> () (* daemon gone: main loop sees EOF too *)
        end
      in
      loop ();
      (try close_out oc with Sys_error _ -> ())

let worker_main connect name poll_ms heartbeat_ms fault_plan fault_seed =
  install_fault_plan fault_plan fault_seed;
  let addr = parse_addr_or_die connect in
  let ic, oc =
    try Protocol.connect addr
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "ncg_served: cannot connect to %s: %s\n%!"
        (Protocol.addr_to_string addr)
        (Unix.error_message e);
      exit 1
  in
  let rpc req =
    Protocol.send_line oc (Protocol.request_to_json req);
    match Protocol.recv_line ic with
    | Ok (Some j) -> (
        match Protocol.response_of_json j with
        | Ok r -> Some r
        | Error msg ->
            Printf.eprintf "ncg_served: bad response: %s\n%!" msg;
            None)
    | Ok None -> None
    | Error msg ->
        Printf.eprintf "ncg_served: %s\n%!" msg;
        None
  in
  (match rpc (Protocol.Hello { client = name; worker = true }) with
  | Some (Protocol.Resp_ok _) -> ()
  | Some (Protocol.Resp_error msg) ->
      Printf.eprintf "ncg_served: hello rejected: %s\n%!" msg;
      exit 1
  | None ->
      Printf.eprintf "ncg_served: daemon hung up during hello\n%!";
      exit 1);
  let hb_stop = Atomic.make false in
  let hb_thread =
    if heartbeat_ms > 0 then
      Some (Thread.create (fun () -> heartbeat_loop addr name heartbeat_ms hb_stop) ())
    else None
  in
  let member n = function
    | Json.Obj fields -> List.assoc_opt n fields
    | _ -> None
  in
  let rec loop () =
    match rpc (Protocol.Lease { worker = name }) with
    | None -> () (* daemon gone *)
    | Some (Protocol.Resp_error msg) ->
        Printf.eprintf "ncg_served: lease rejected: %s\n%!" msg;
        exit 1
    | Some (Protocol.Resp_ok fields) -> (
        match List.assoc_opt "task" fields with
        | Some (Json.Obj _ as task_json) -> (
            let task_id =
              match member "id" task_json with
              | Some (Json.Int id) -> id
              | _ ->
                  Printf.eprintf "ncg_served: lease reply without task id\n%!";
                  exit 1
            in
            let spec =
              match member "spec" task_json with
              | Some spec_json -> (
                  match Ncg.Sweep_spec.of_json spec_json with
                  | Ok spec -> spec
                  | Error msg ->
                      Printf.eprintf "ncg_served: bad task spec: %s\n%!" msg;
                      exit 1)
              | None ->
                  Printf.eprintf "ncg_served: lease reply without spec\n%!";
                  exit 1
            in
            let cell =
              match (member "alpha" task_json, member "k" task_json) with
              | Some (Json.Float alpha), Some (Json.Int k) ->
                  { Ncg.Experiment.alpha; k }
              | Some (Json.Int alpha), Some (Json.Int k) ->
                  { Ncg.Experiment.alpha = float_of_int alpha; k }
              | _ ->
                  Printf.eprintf "ncg_served: lease reply without cell\n%!";
                  exit 1
            in
            (* Same fault discipline as in-process workers: arm with
               the task id as scope, fire sweep.cell, report failures
               as failed attempts. The cancellation flag is published
               for the heartbeat thread, which sets it if the daemon
               revokes this lease mid-cell. *)
            Ncg_fault.Inject.arm ~scope:task_id;
            let cancel_flag = Atomic.make false in
            Atomic.set current_task (Some (task_id, cancel_flag));
            let outcome =
              Fun.protect
                ~finally:(fun () ->
                  Atomic.set current_task None;
                  Ncg_fault.Inject.disarm ())
                (fun () ->
                  try
                    Ncg_fault.Inject.(hit sweep_cell);
                    Ncg_fault.Cancel.with_control ~cancel:cancel_flag
                      (fun () ->
                        Ok
                          (Ncg.Experiment.cell_result_to_json
                             (Ncg.Sweep_spec.run_cell spec cell)))
                  with e -> Error (Printexc.to_string e))
            in
            let report =
              match outcome with
              | Ok result ->
                  Protocol.Complete { worker = name; task = task_id; result }
              | Error error -> Protocol.Fail { worker = name; task = task_id; error }
            in
            match rpc report with
            | Some (Protocol.Resp_ok _) -> loop ()
            | Some (Protocol.Resp_error msg) ->
                (* e.g. our lease was requeued under us; keep polling *)
                Printf.eprintf "ncg_served: report rejected: %s\n%!" msg;
                loop ()
            | None -> ())
        | _ ->
            let draining =
              match List.assoc_opt "draining" fields with
              | Some (Json.Bool b) -> b
              | _ -> false
            in
            if draining then ()
            else begin
              Unix.sleepf (float_of_int poll_ms /. 1000.);
              loop ()
            end)
  in
  loop ();
  Atomic.set hb_stop true;
  (try close_out oc with Sys_error _ -> ());
  (* The heartbeat thread wakes from its sleep, sees the stop flag and
     exits; don't block shutdown on a full interval. *)
  (match hb_thread with
  | Some th when heartbeat_ms <= 1000 -> Thread.join th
  | _ -> ());
  exit 0

(* --- Daemon mode --------------------------------------------------------- *)

let daemon_main listen_spec store_dir workers poll_ms events fault_plan
    fault_seed max_retries max_cells deadline_ms tick_ms drain quiet
    heartbeat_timeout_ms quarantine_failures quarantine_cooldown_ms =
  if quiet then Ncg_obs.Events.set_progress false;
  install_fault_plan fault_plan fault_seed;
  let addr = parse_addr_or_die listen_spec in
  let scheduler =
    try
      Scheduler.create
        {
          Scheduler.store_dir;
          max_retries;
          default_deadline_ms = deadline_ms;
          max_cells;
          heartbeat_timeout_ms;
          quarantine_failures;
          quarantine_cooldown_ms;
        }
    with Ncg_store.Store.Locked { dir; pid } ->
      Printf.eprintf
        "ncg_served: store %s is locked by a running process (pid %d)\n%!" dir
        pid;
      exit 1
  in
  let listen_fd =
    try Server.listen addr
    with Unix.Unix_error (e, _, arg) ->
      Printf.eprintf "ncg_served: cannot listen on %s: %s (%s)\n%!"
        (Protocol.addr_to_string addr)
        (Unix.error_message e) arg;
      Scheduler.close scheduler;
      exit 1
  in
  let stop_signal s = ignore s; Server.shutdown () in
  List.iter
    (fun s ->
      try ignore (Sys.signal s (Sys.Signal_handle stop_signal))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  Printf.eprintf "ncg_served: serving %s (store %s, %d worker domain%s)\n%!"
    (Protocol.addr_to_string addr)
    store_dir workers
    (if workers = 1 then "" else "s");
  Server.serve
    {
      Server.addr;
      workers;
      worker_poll_ms = poll_ms;
      events_file = events;
      tick_ms;
      drain;
    }
    scheduler listen_fd;
  Scheduler.close scheduler;
  Printf.eprintf "ncg_served: stopped\n%!"

(* --- CLI ----------------------------------------------------------------- *)

let run worker connect name listen store workers poll_ms events fault_plan
    fault_seed max_retries max_cells deadline_ms tick_ms drain quiet
    heartbeat_ms heartbeat_timeout_ms quarantine_failures
    quarantine_cooldown_ms =
  if worker then begin
    match connect with
    | Some connect ->
        worker_main connect name poll_ms heartbeat_ms fault_plan fault_seed
    | None ->
        Printf.eprintf "ncg_served: --worker requires --connect ADDR\n%!";
        exit 2
  end
  else
    daemon_main listen store workers poll_ms events fault_plan fault_seed
      max_retries max_cells deadline_ms tick_ms drain quiet
      heartbeat_timeout_ms quarantine_failures quarantine_cooldown_ms

let worker_flag =
  Arg.(value & flag & info [ "worker" ]
         ~doc:"Run as an external worker process feeding off a daemon \
               (requires $(b,--connect)).")

let connect =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR"
         ~doc:"Daemon address for --worker mode (unix:PATH or tcp:HOST:PORT).")

let worker_name =
  Arg.(value & opt string (Printf.sprintf "worker-%d" (Unix.getpid ()))
       & info [ "name" ] ~docv:"NAME" ~doc:"Worker name (default worker-PID).")

let listen =
  Arg.(value & opt string "unix:ncg.sock" & info [ "listen" ] ~docv:"ADDR"
         ~doc:"Address to serve (unix:PATH or tcp:HOST:PORT).")

let store =
  Arg.(value & opt string "ncg-store" & info [ "store" ] ~docv:"DIR"
         ~doc:"Content-addressed store directory (also holds queue.log).")

let workers =
  Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N"
         ~doc:"In-process worker domains (0 = external workers only).")

let poll_ms =
  Arg.(value & opt int 50 & info [ "poll-ms" ] ~docv:"MS"
         ~doc:"Idle worker sleep between lease attempts.")

let events =
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
         ~doc:"Append every structured event line to this file (the \
               stream subscribers see).")

let fault_plan =
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"SPEC"
         ~doc:"Install a deterministic fault plan (see ncg_experiment).")

let fault_seed =
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"Seed for probabilistic fault triggers.")

let max_retries =
  Arg.(value & opt int 2 & info [ "max-retries" ] ~docv:"N"
         ~doc:"Failed attempts tolerated per cell before quarantine.")

let max_cells =
  Arg.(value & opt (some int) None & info [ "max-cells" ] ~docv:"N"
         ~doc:"Reject submissions whose grid exceeds N cells.")

let deadline_ms =
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Default per-job deadline applied to submissions that \
               carry none.")

let tick_ms =
  Arg.(value & opt int 200 & info [ "tick-ms" ] ~docv:"MS"
         ~doc:"Deadline-check and shutdown-poll period.")

let drain =
  Arg.(value & flag & info [ "drain" ]
         ~doc:"Exit once at least one job was submitted and all work is \
               done (smoke-test mode).")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Disable the progress line.")

let heartbeat_ms =
  Arg.(value & opt int 2000 & info [ "heartbeat-ms" ] ~docv:"MS"
         ~doc:"Worker mode: ping the daemon this often from a side \
               connection (0 disables heartbeats).")

let heartbeat_timeout_ms =
  Arg.(value & opt int 10_000 & info [ "heartbeat-timeout-ms" ] ~docv:"MS"
         ~doc:"Reclaim leases from external workers silent this long \
               (0 disables the heartbeat monitor).")

let quarantine_failures =
  Arg.(value & opt int 3 & info [ "quarantine-failures" ] ~docv:"N"
         ~doc:"Quarantine a worker after N consecutive failed or \
               expired attempts.")

let quarantine_cooldown_ms =
  Arg.(value & opt int 5000 & info [ "quarantine-cooldown-ms" ] ~docv:"MS"
         ~doc:"Quarantined workers may rejoin (ping) after this long.")

let cmd =
  let doc = "persistent sweep daemon over the content-addressed store" in
  Cmd.v
    (Cmd.info "ncg_served" ~doc)
    Term.(const run $ worker_flag $ connect $ worker_name $ listen $ store $ workers
          $ poll_ms $ events $ fault_plan $ fault_seed $ max_retries
          $ max_cells $ deadline_ms $ tick_ms $ drain $ quiet $ heartbeat_ms
          $ heartbeat_timeout_ms $ quarantine_failures $ quarantine_cooldown_ms)

let () = exit (Cmd.eval cmd)
