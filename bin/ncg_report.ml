(* ncg_report: run one dynamics and write a self-contained markdown report
   (configuration, outcome, per-round features, social-cost chart, trace
   summary).

   Example:
     dune exec bin/ncg_report.exe -- --class tree -n 40 --alpha 2 -k 3 \
         --out report.md *)

open Cmdliner

let run graph_class n p alpha k seed variant out =
  let strategy =
    match graph_class with
    | "tree" -> Ncg.Experiment.initial_tree ~seed ~n
    | "gnp" -> Ncg.Experiment.initial_gnp ~seed ~n ~p
    | "ba" -> Ncg.Experiment.initial_ba ~seed ~n ~m:2
    | "ws" -> Ncg.Experiment.initial_ws ~seed ~n ~k:4 ~beta:0.2
    | other -> failwith (Printf.sprintf "unknown graph class %S" other)
  in
  let variant =
    match variant with
    | "max" -> Ncg.Game.Max
    | "sum" -> Ncg.Game.Sum
    | v -> failwith ("unknown variant " ^ v)
  in
  let config =
    {
      (Ncg.Dynamics.default_config ~alpha ~k) with
      Ncg.Dynamics.variant;
      solver = `Budgeted 50_000;
      sum_mode = `Branch_and_bound 34;
    }
  in
  let result = Ncg.Dynamics.run config strategy in
  let title =
    Printf.sprintf "%sNCG dynamics on %s (n=%d, alpha=%g, k=%d, seed=%d)"
      (Ncg.Game.variant_to_string variant)
      graph_class n alpha k seed
  in
  let report = Ncg_reporting.Run_report.of_run ~title config strategy result in
  match out with
  | None -> print_string report
  | Some path ->
      Ncg_obs.Atomic_file.write path report;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length report)

let graph_class =
  Arg.(value & opt string "tree" & info [ "class" ] ~docv:"CLASS"
         ~doc:"tree, gnp, ba or ws.")

let n = Arg.(value & opt int 40 & info [ "n" ] ~doc:"Players.")
let p = Arg.(value & opt float 0.1 & info [ "p" ] ~doc:"Edge probability (gnp).")
let alpha = Arg.(value & opt float 2.0 & info [ "alpha"; "a" ] ~doc:"Edge price.")
let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"View radius.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")
let variant = Arg.(value & opt string "max" & info [ "variant" ] ~doc:"max or sum.")

let out =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
         ~doc:"Write the report here instead of stdout.")

let cmd =
  let doc = "write a markdown report of one dynamics run" in
  Cmd.v (Cmd.info "ncg_report" ~doc)
    Term.(const run $ graph_class $ n $ p $ alpha $ k $ seed $ variant $ out)

let () = exit (Cmd.eval cmd)
