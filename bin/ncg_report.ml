(* ncg_report: run one dynamics and write a self-contained markdown report
   (configuration, outcome, per-round features, social-cost chart, trace
   summary).

   Example:
     dune exec bin/ncg_report.exe -- --class tree -n 40 --alpha 2 -k 3 \
         --out report.md

   With --telemetry FILE it instead summarizes an existing sweep telemetry
   document: a latency table (count, p50/p90/p99, max) per histogram in
   the sweep-wide "histograms_total" section. *)

open Cmdliner

let pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let latency_report path out =
  let module Json = Ncg_obs.Json in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let doc =
    match Json.of_string contents with
    | Ok j -> j
    | Error e -> failwith (Printf.sprintf "%s: %s" path e)
  in
  let member name = function
    | Json.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let num name j =
    match member name j with
    | Some (Json.Int i) -> float_of_int i
    | Some (Json.Float f) -> f
    | _ -> nan
  in
  let hists =
    match member "histograms_total" doc with
    | Some (Json.Obj fields) -> fields
    | _ ->
        failwith
          (Printf.sprintf "%s: no \"histograms_total\" object (is this sweep \
                           telemetry?)" path)
  in
  let md = Ncg_reporting.Markdown.create () in
  Ncg_reporting.Markdown.heading md 1 "Sweep latency profile";
  Ncg_reporting.Markdown.paragraph md
    (Printf.sprintf "Source: `%s`, %d histogram(s)." path (List.length hists));
  Ncg_reporting.Markdown.table md
    ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
    (List.map
       (fun (name, h) ->
         [
           name;
           Printf.sprintf "%.0f" (num "count" h);
           pretty_ns (num "p50_ns" h);
           pretty_ns (num "p90_ns" h);
           pretty_ns (num "p99_ns" h);
           pretty_ns (num "max_ns" h);
         ])
       hists);
  let report = Ncg_reporting.Markdown.to_string md in
  match out with
  | None -> print_string report
  | Some path ->
      Ncg_obs.Atomic_file.write path report;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length report)

let run graph_class n p alpha k seed variant telemetry out =
  match telemetry with
  | Some path -> latency_report path out
  | None ->
  let strategy =
    match graph_class with
    | "tree" -> Ncg.Experiment.initial_tree ~seed ~n
    | "gnp" -> Ncg.Experiment.initial_gnp ~seed ~n ~p
    | "ba" -> Ncg.Experiment.initial_ba ~seed ~n ~m:2
    | "ws" -> Ncg.Experiment.initial_ws ~seed ~n ~k:4 ~beta:0.2
    | other -> failwith (Printf.sprintf "unknown graph class %S" other)
  in
  let variant =
    match variant with
    | "max" -> Ncg.Game.Max
    | "sum" -> Ncg.Game.Sum
    | v -> failwith ("unknown variant " ^ v)
  in
  let config =
    {
      (Ncg.Dynamics.default_config ~alpha ~k) with
      Ncg.Dynamics.variant;
      solver = `Budgeted 50_000;
      sum_mode = `Branch_and_bound 34;
    }
  in
  let result = Ncg.Dynamics.run config strategy in
  let title =
    Printf.sprintf "%sNCG dynamics on %s (n=%d, alpha=%g, k=%d, seed=%d)"
      (Ncg.Game.variant_to_string variant)
      graph_class n alpha k seed
  in
  let report = Ncg_reporting.Run_report.of_run ~title config strategy result in
  match out with
  | None -> print_string report
  | Some path ->
      Ncg_obs.Atomic_file.write path report;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length report)

let graph_class =
  Arg.(value & opt string "tree" & info [ "class" ] ~docv:"CLASS"
         ~doc:"tree, gnp, ba or ws.")

let n = Arg.(value & opt int 40 & info [ "n" ] ~doc:"Players.")
let p = Arg.(value & opt float 0.1 & info [ "p" ] ~doc:"Edge probability (gnp).")
let alpha = Arg.(value & opt float 2.0 & info [ "alpha"; "a" ] ~doc:"Edge price.")
let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"View radius.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")
let variant = Arg.(value & opt string "max" & info [ "variant" ] ~doc:"max or sum.")

let telemetry =
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE"
         ~doc:"Summarize this sweep telemetry JSON (latency table from its \
               histograms_total section) instead of running a dynamics.")

let out =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
         ~doc:"Write the report here instead of stdout.")

let cmd =
  let doc = "write a markdown report of one dynamics run" in
  Cmd.v (Cmd.info "ncg_report" ~doc)
    Term.(
      const run $ graph_class $ n $ p $ alpha $ k $ seed $ variant $ telemetry
      $ out)

let () = exit (Cmd.eval cmd)
