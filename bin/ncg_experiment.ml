(* ncg_experiment: run a parameter grid of best-response dynamics and print
   one CSV row per (alpha, k) cell — the raw series behind the paper's
   Figures 5-10.

   Cells are independent and fan out over OCaml domains (--domains); for a
   fixed --seed the CSV is byte-identical whatever the domain count, since
   every cell draws its RNG streams from a SplitMix64 split of the seed
   before the fan-out. --telemetry FILE additionally dumps per-cell wall
   times, hot-path counters (BFS calls, solver nodes, best responses),
   latency histograms, GC deltas and span trees as JSON; --trace-out FILE
   writes the sweep timeline as Chrome trace-event JSON (open in
   ui.perfetto.dev); --events FILE logs one JSONL line per accepted
   dynamics move and per finished cell.

   --store DIR keeps a crash-safe result cache (see docs/STORE.md): cells
   already in the store are returned without recomputation, fresh cells
   are appended (fsync'd) the moment they finish, so a killed sweep
   resumes from where it died. --resume is --store plus a guard that DIR
   already exists; --no-cache recomputes everything but still refreshes
   the store. --only-cell ALPHA:K runs one cell of the grid with exactly
   the seeds the full sweep would give it.

   Sweeps run under a supervised executor (see docs/ROBUSTNESS.md): a
   failing cell is retried up to --max-retries times (backing off
   --retry-backoff-ms * attempt), then quarantined while every other
   cell completes; quarantines are listed on stderr and in the
   telemetry failure report ("sweep.failures") and make the exit code 3.
   --cell-deadline-ms bounds each attempt (watchdog + cooperative
   cancellation); --move-budget bounds a single player move's search
   steps so a pathological cell times out instead of hanging.
   --fault-plan SPEC (with --fault-seed) injects deterministic faults —
   raises, delays, short store writes — for testing that machinery;
   see docs/ROBUSTNESS.md for the plan syntax. SIGINT/SIGTERM flush the
   store, telemetry and event log before exiting 128+signal.

   Examples:
     # Figure 5 series (view sizes) on 50-vertex trees, 5 seeds per cell
     dune exec bin/ncg_experiment.exe -- --class tree -n 50 --trials 5

     # Figure 8/9 series on G(100, 0.1), 4 domains, with telemetry
     dune exec bin/ncg_experiment.exe -- --class gnp -n 100 -p 0.1 \
         --alphas 0.5,1,2 --ks 2,3,1000 --domains 4 --telemetry cells.json \
         --trace-out trace.json --events events.jsonl

     # Resumable sweep: kill it, rerun the same line, only missing cells run
     dune exec bin/ncg_experiment.exe -- --class gnp -n 100 -p 0.1 \
         --trials 5 --store results/gnp100

     # Reproduce one cell of that sweep in isolation
     dune exec bin/ncg_experiment.exe -- --class gnp -n 100 -p 0.1 \
         --trials 5 --only-cell 2:1000 *)

open Cmdliner
module Experiment = Ncg.Experiment
module Dynamics = Ncg.Dynamics
module Store = Ncg_store.Store
module Metrics = Ncg_obs.Metrics
module Json = Ncg_obs.Json

let default_alphas = [ 0.5; 1.0; 2.0; 5.0 ]
let default_ks = [ 2; 3; 4; 5; 1000 ]

let header = Experiment.csv_header

let cell_json graph_class n p trials (r : Experiment.cell_result) =
  Json.Obj
    [
      ("class", Json.String graph_class);
      ("n", Json.Int n);
      ("p", Json.Float p);
      ("alpha", Json.Float r.Experiment.cell.Experiment.alpha);
      ("k", Json.Int r.Experiment.cell.Experiment.k);
      ("trials", Json.Int trials);
      ("wall_seconds", Json.Float (Ncg_obs.Clock.ns_to_s r.Experiment.wall_ns));
      ("domain", Json.Int r.Experiment.domain);
      ("counters", Metrics.to_json r.Experiment.counters);
      ("histograms", Ncg_obs.Histogram.to_json r.Experiment.histograms);
      ("probes", Ncg_obs.Probe.to_json r.Experiment.probes);
      ("gc", Ncg_obs.Gc_stats.to_json r.Experiment.gc);
      ("spans", Ncg_obs.Span.to_json r.Experiment.spans);
    ]

(* Probe series carry no wall-clock of their own (cell payloads are
   wall-clock-free by contract), so for the timeline their rounds are
   spread evenly across the cell's span — synthetic timestamps, real
   values. Non-finite samples (disconnected social cost) are skipped:
   Perfetto rejects counter tracks with null values. *)
let add_probe_track trace ~tid ~started_ns ~wall_ns ~label series =
  let samples = Ncg_obs.Timeseries.to_list series in
  let count = List.length samples in
  List.iteri
    (fun i (_x, y) ->
      if Float.is_finite y then begin
        let ts_ns =
          Int64.add started_ns
            (Int64.of_float
               (Int64.to_float wall_ns
               *. (float_of_int (i + 1) /. float_of_int (count + 1))))
        in
        Ncg_obs.Chrome_trace.add_counter trace ~tid ~ts_ns ~name:label
          [ ("value", y) ]
      end)
    samples

(* One Perfetto track per domain: each cell's span tree at its absolute
   start, a GC counter sample (words allocated by that cell) at the
   cell boundary, and counter tracks for the exemplar trial's
   convergence series. *)
let write_trace path (results : Experiment.cell_result list) =
  let trace = Ncg_obs.Chrome_trace.create ~process_name:"ncg_experiment" () in
  List.iter
    (fun (r : Experiment.cell_result) ->
      let tid = r.Experiment.domain in
      Ncg_obs.Chrome_trace.add_span_tree trace ~tid r.Experiment.spans;
      let end_ns = Int64.add r.Experiment.started_ns r.Experiment.wall_ns in
      Ncg_obs.Chrome_trace.add_counter trace ~tid ~ts_ns:end_ns
        ~name:"gc allocated words"
        [ ("words", Ncg_obs.Gc_stats.allocated_words r.Experiment.gc) ];
      List.iter
        (fun (probe, label) ->
          match
            List.assoc_opt (Ncg_obs.Probe.name probe) r.Experiment.probes
          with
          | Some series ->
              add_probe_track trace ~tid ~started_ns:r.Experiment.started_ns
                ~wall_ns:r.Experiment.wall_ns ~label series
          | None -> ())
        [
          (Ncg_obs.Probe.social_cost, "social cost (trial 0)");
          (Ncg_obs.Probe.awake_players, "awake players (trial 0)");
        ])
    results;
  Ncg_obs.Chrome_trace.to_file path trace;
  Printf.eprintf "chrome trace (%d events) written to %s\n%!"
    (Ncg_obs.Chrome_trace.event_count trace)
    path

let parse_only_cell s =
  match String.index_opt s ':' with
  | Some i -> (
      let a = String.sub s 0 i in
      let k = String.sub s (i + 1) (String.length s - i - 1) in
      match (float_of_string_opt a, int_of_string_opt k) with
      | Some alpha, Some k -> { Experiment.alpha; k }
      | _ ->
          Printf.eprintf "ncg_experiment: --only-cell: cannot parse %S as ALPHA:K\n%!" s;
          exit 2)
  | None ->
      Printf.eprintf "ncg_experiment: --only-cell expects ALPHA:K, got %S\n%!" s;
      exit 2

(* Sys.sigint / Sys.sigterm are OCaml-internal numbers; exit codes and
   logs want the POSIX ones. *)
let posix_signal s =
  if s = Sys.sigint then 2 else if s = Sys.sigterm then 15 else 0

let install_signal_handlers () =
  let handle s = Ncg_fault.Cancel.request_shutdown (posix_signal s) in
  List.iter
    (fun s ->
      try ignore (Sys.signal s (Sys.Signal_handle handle))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let run graph_class n p alphas ks trials seed budget domains store_dir resume
    no_cache only_cell telemetry trace_out events quiet no_progress no_probes
    fault_plan_spec fault_seed max_retries retry_backoff_ms cell_deadline_ms
    move_budget by_cell_seeds =
  if quiet || no_progress then Ncg_obs.Events.set_progress false;
  let probes = not no_probes in
  let fault_plan =
    match fault_plan_spec with
    | None -> None
    | Some spec -> (
        match Ncg_fault.Inject.parse_plan ~seed:fault_seed spec with
        | Ok plan ->
            Ncg_fault.Inject.install plan;
            Some plan
        | Error msg ->
            Printf.eprintf "ncg_experiment: --fault-plan: %s\n%!" msg;
            exit 2)
  in
  let retry_backoff_ns = Int64.of_float (retry_backoff_ms *. 1e6) in
  let cell_deadline_ns =
    if cell_deadline_ms <= 0. then None
    else Some (Int64.of_float (cell_deadline_ms *. 1e6))
  in
  install_signal_handlers ();
  let alphas = if alphas = [] then default_alphas else alphas in
  let ks = if ks = [] then default_ks else ks in
  (* One spec record drives everything downstream — the same compiler
     the sweep service uses, so a served cell and a one-shot cell are
     built from identical constructors. *)
  let spec =
    {
      Ncg.Sweep_spec.graph_class;
      n;
      p;
      alphas;
      ks;
      trials;
      seed;
      budget;
      move_budget;
      probes;
    }
  in
  (match Ncg.Sweep_spec.validate spec with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "ncg_experiment: %s\n%!" msg;
      exit 2);
  let make_initial = Ncg.Sweep_spec.make_initial spec in
  let make_config = Ncg.Sweep_spec.make_config spec in
  let cells = Ncg.Sweep_spec.cells spec in
  let total = List.length cells in
  let cell_seeds =
    if by_cell_seeds then
      Array.of_list (List.map (Ncg.Sweep_spec.cell_seed spec) cells)
    else Experiment.derive_seeds ~seed ~count:total
  in
  let context = Ncg.Sweep_spec.context spec in
  let key_of idx cell =
    Experiment.cell_cache_key ~probes ~context ~seed ~trials
      ~cell_seed:cell_seeds.(idx) cell
  in
  (if resume && store_dir = None then begin
     Printf.eprintf "ncg_experiment: --resume requires --store DIR\n%!";
     exit 2
   end);
  let store =
    match store_dir with
    | None -> None
    | Some dir ->
        if resume && not (Sys.file_exists dir) then begin
          Printf.eprintf
            "ncg_experiment: --resume: store %s does not exist (drop --resume \
             to create it)\n%!"
            dir;
          exit 1
        end;
        Some
          (try Store.open_dir dir
           with Store.Locked { dir; pid } ->
             Printf.eprintf
               "ncg_experiment: store %s is locked by a running sweep (pid \
                %d); wait for it or pick another --store\n%!"
               dir pid;
             exit 1)
  in
  (* Index of --only-cell in the full grid: the cell must be looked up in
     the grid (not run standalone) so its derived seed — and therefore its
     results and cache key — match the full sweep's. *)
  let only_idx =
    match only_cell with
    | None -> None
    | Some spec ->
        let wanted = parse_only_cell spec in
        let found = ref None in
        List.iteri
          (fun i (c : Experiment.cell) ->
            if !found = None && c = wanted then found := Some i)
          cells;
        (match !found with
        | Some _ -> ()
        | None ->
            Printf.eprintf
              "ncg_experiment: --only-cell %s is not in the grid (alphas: %s; \
               ks: %s)\n%!"
              spec
              (String.concat "," (List.map (Printf.sprintf "%g") alphas))
              (String.concat "," (List.map string_of_int ks));
            exit 1);
        !found
  in
  let started = Ncg_obs.Clock.now_ns () in
  let run_sweep () =
    match only_idx with
    | Some idx -> (
        let cell = List.nth cells idx in
        let cached =
          if no_cache then None
          else
            Option.bind store (fun s ->
                Experiment.store_lookup s (key_of idx cell))
        in
        match cached with
        | Some r -> [ Ok r ]
        | None ->
            (* Reproduce the supervised path in isolation: arm the
               installed fault plan with the cell's full-grid index as
               scope — the same scope Executor.map would use — so
               `--only-cell X --fault-plan P` replays exactly the faults
               cell X saw inside the full sweep. Hit counters persist
               across retries (no re-arm), the store insert is part of
               the attempt, and --cell-deadline-ms is honoured
               cooperatively through Cancel checkpoints (no watchdog
               domain for a single cell). *)
            let attempts_allowed = 1 + max_retries in
            Ncg_fault.Inject.arm ~scope:idx;
            let outcome =
              Fun.protect ~finally:Ncg_fault.Inject.disarm (fun () ->
                  let rec attempt a =
                    match
                      Ncg_fault.Cancel.with_control
                        ?timeout_ns:cell_deadline_ns (fun () ->
                          Ncg_fault.Inject.(hit sweep_cell);
                          let r =
                            Experiment.run_cell ~probes ~make_initial
                              ~make_config ~trials ~cell_seed:cell_seeds.(idx)
                              cell
                          in
                          (match store with
                          | Some s when not no_cache ->
                              Experiment.store_insert s (key_of idx cell) r
                          | _ -> ());
                          r)
                    with
                    | r -> Ok r
                    | exception e ->
                        let kind = Ncg_fault.Executor.classify e in
                        let will_retry =
                          kind <> Ncg_fault.Executor.Interrupted
                          && a < attempts_allowed
                        in
                        if Ncg_obs.Events.active () then
                          Ncg_obs.Events.emit ~severity:Ncg_obs.Events.Warn
                            "sweep.cell.attempt_failed"
                            [
                              ("index", Json.Int idx);
                              ("alpha", Json.Float cell.Experiment.alpha);
                              ("k", Json.Int cell.Experiment.k);
                              ("attempt", Json.Int a);
                              ( "kind",
                                Json.String
                                  (Ncg_fault.Executor.kind_to_string kind) );
                              ("error", Json.String (Printexc.to_string e));
                              ("will_retry", Json.Bool will_retry);
                            ];
                        if will_retry then begin
                          if retry_backoff_ns > 0L then
                            Unix.sleepf
                              (Int64.to_float retry_backoff_ns
                              *. 1e-9 *. float_of_int a);
                          attempt (a + 1)
                        end
                        else begin
                          if Ncg_obs.Events.active () then
                            Ncg_obs.Events.emit
                              ~severity:Ncg_obs.Events.Error
                              "sweep.cell.quarantined"
                              [
                                ("index", Json.Int idx);
                                ("alpha", Json.Float cell.Experiment.alpha);
                                ("k", Json.Int cell.Experiment.k);
                                ("cell_seed", Json.Int cell_seeds.(idx));
                                ("attempts", Json.Int a);
                                ( "kind",
                                  Json.String
                                    (Ncg_fault.Executor.kind_to_string kind)
                                );
                                ("error", Json.String (Printexc.to_string e));
                              ];
                          Error
                            {
                              Experiment.index = idx;
                              cell;
                              cell_seed = cell_seeds.(idx);
                              attempts = a;
                              kind;
                              exn_text = Printexc.to_string e;
                              exn = e;
                            }
                        end
                  in
                  attempt 1)
            in
            [ outcome ])
    | None ->
        Experiment.sweep_supervised ~domains ~max_retries ~retry_backoff_ns
          ?cell_deadline_ns
          ?store:(if no_cache then None else store)
          ~store_context:context ~probes ~cell_seeds ~make_initial ~make_config
          ~cells ~trials ~seed ()
  in
  let outcomes =
    match events with
    | None -> run_sweep ()
    | Some path -> (
        try Ncg_obs.Events.with_file path run_sweep
        with Sys_error msg ->
          Printf.eprintf "ncg_experiment: cannot write events: %s\n%!" msg;
          exit 1)
  in
  let results = List.filter_map Result.to_option outcomes in
  let failures = Experiment.sweep_failures outcomes in
  let interrupted = Ncg_fault.Cancel.shutdown_requested () in
  (* --no-cache recomputed everything; refresh the store afterwards so the
     next cached run picks the new records up. *)
  (if no_cache then
     match store with
     | Some s ->
         List.iteri
           (fun j outcome ->
             match outcome with
             | Error (_ : Experiment.cell_failure) -> ()
             | Ok (r : Experiment.cell_result) ->
                 let idx = match only_idx with Some i -> i | None -> j in
                 Experiment.store_insert s (key_of idx r.Experiment.cell) r)
           outcomes
     | None -> ());
  let sweep_wall = Ncg_obs.Clock.elapsed_ns ~since:started in
  (match trace_out with
  | None -> ()
  | Some path -> (
      try write_trace path results
      with Sys_error msg ->
        Printf.eprintf "ncg_experiment: cannot write trace: %s\n%!" msg;
        exit 1));
  print_endline header;
  List.iter
    (fun (r : Experiment.cell_result) ->
      print_string (Experiment.csv_row ~graph_class ~n ~p ~trials r);
      print_newline ();
      flush stdout)
    results;
  (match telemetry with
  | None -> ()
  | Some path -> (
      let store_fields =
        match store with
        | None -> []
        | Some s -> [ ("store", Store.stats_to_json (Store.stats s)) ]
      in
      let doc =
        Json.Obj
          ([
             (* /4: cells gained a "probes" section (round-level series of
                the exemplar trial) and the top level records the probes
                switch. *)
             ("schema", Json.String Ncg_obs.Schema.experiment_telemetry);
             ("seed", Json.Int seed);
             ("domains", Json.Int domains);
             ("probes", Json.Bool probes);
             ("max_retries", Json.Int max_retries);
             ( "fault_plan",
               match fault_plan with
               | None -> Json.Null
               | Some plan ->
                   Json.String (Ncg_fault.Inject.plan_to_string plan) );
             ("interrupted", Json.Bool (interrupted <> None));
             ("failed_cells", Json.Int (List.length failures));
             ( "sweep.failures",
               Json.List
                 (List.map
                    (fun (f : Experiment.cell_failure) ->
                      match Experiment.cell_failure_to_json f with
                      | Json.Obj fields ->
                          (* The exact CSV row prefix of the quarantined
                             cell, so tooling (the CI fault-smoke job) can
                             filter it from a clean run's CSV without
                             re-deriving float formatting. *)
                          Json.Obj
                            (fields
                            @ [
                                ( "csv_row_prefix",
                                  Json.String
                                    (Printf.sprintf "%s,%d,%g,%g,%d,%d,"
                                       graph_class n p
                                       f.Experiment.cell.Experiment.alpha
                                       f.Experiment.cell.Experiment.k trials)
                                );
                              ])
                      | j -> j)
                    failures) );
             ("wall_seconds", Json.Float (Ncg_obs.Clock.ns_to_s sweep_wall));
             ( "cells_wall_seconds",
               Json.Float
                 (Ncg_obs.Clock.ns_to_s (Experiment.sweep_wall_ns results)) );
             ("counters_total", Metrics.to_json (Experiment.sweep_counters results));
             ( "histograms_total",
               Ncg_obs.Histogram.to_json (Experiment.sweep_histograms results) );
             ("gc_total", Ncg_obs.Gc_stats.to_json (Experiment.sweep_gc results));
           ]
          @ store_fields
          @ [
              ( "cells",
                Json.List (List.map (cell_json graph_class n p trials) results) );
            ])
      in
      try
        Json.to_file path doc;
        Printf.eprintf "telemetry written to %s\n%!" path
      with Sys_error msg ->
        Printf.eprintf "ncg_experiment: cannot write telemetry: %s\n%!" msg;
        exit 1));
  (match store with
  | None -> ()
  | Some s ->
      let st = Store.stats s in
      Printf.eprintf
          "store %s: %d hit%s, %d miss%s, %d inserted, %d live record%s%s%s\n%!"
          (Option.value store_dir ~default:"?")
          st.Store.hits
          (if st.Store.hits = 1 then "" else "s")
          st.Store.misses
          (if st.Store.misses = 1 then "" else "es")
          st.Store.inserts st.Store.live
          (if st.Store.live = 1 then "" else "s")
          (if st.Store.superseded > 0 then
             Printf.sprintf " (%d superseded)" st.Store.superseded
           else "")
          (if st.Store.heals > 0 then
             Printf.sprintf " (%d heal%s)" st.Store.heals
               (if st.Store.heals = 1 then "" else "s")
           else "");
      Store.close s);
  (* Structured failure report: one stderr line per quarantined cell,
     then a distinct exit code — after the store, telemetry and events
     are all flushed. *)
  List.iter
    (fun (f : Experiment.cell_failure) ->
      Printf.eprintf
        "QUARANTINED cell alpha=%g k=%d (index %d, seed %d): %d attempt%s, \
         %s: %s\n%!"
        f.Experiment.cell.Experiment.alpha f.Experiment.cell.Experiment.k
        f.Experiment.index f.Experiment.cell_seed f.Experiment.attempts
        (if f.Experiment.attempts = 1 then "" else "s")
        (Ncg_fault.Executor.kind_to_string f.Experiment.kind)
        f.Experiment.exn_text)
    failures;
  match interrupted with
  | Some s ->
      Printf.eprintf
        "ncg_experiment: interrupted by signal %d (store/telemetry/events \
         flushed)\n%!"
        s;
      exit (128 + s)
  | None ->
      if failures <> [] then begin
        Printf.eprintf "ncg_experiment: %d of %d cells quarantined\n%!"
          (List.length failures) total;
        exit 3
      end

let graph_class =
  Arg.(value & opt string "tree" & info [ "class" ] ~docv:"CLASS"
         ~doc:"tree, gnp, ba (Barabasi-Albert) or ws (Watts-Strogatz).")

let n = Arg.(value & opt int 50 & info [ "n" ] ~docv:"N" ~doc:"Players.")
let p = Arg.(value & opt float 0.1 & info [ "p" ] ~docv:"P" ~doc:"Edge probability (gnp).")

let alphas =
  Arg.(value & opt (list float) [] & info [ "alphas" ] ~docv:"LIST" ~doc:"Alpha grid.")

let ks = Arg.(value & opt (list int) [] & info [ "ks" ] ~docv:"LIST" ~doc:"View radius grid.")
let trials = Arg.(value & opt int 5 & info [ "trials" ] ~docv:"T" ~doc:"Seeds per cell.")
let seed = Arg.(value & opt int 2014 & info [ "seed" ] ~doc:"Base seed.")

let budget =
  Arg.(value & opt int 50_000 & info [ "budget" ] ~doc:"Branch-and-bound node budget per best response.")

let domains =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D"
         ~doc:"Domains to fan sweep cells over; output is identical for any value.")

let store_dir =
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
         ~doc:"Crash-safe result store: cells already present are served from \
               it, fresh cells are appended (fsync'd) as they finish. See \
               docs/STORE.md.")

let resume =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Require the --store directory to already exist — a guard \
               against silently starting from scratch on a mistyped path.")

let no_cache =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Recompute every cell even when cached, then refresh the store \
               with the new results.")

let only_cell =
  Arg.(value & opt (some string) None & info [ "only-cell" ] ~docv:"ALPHA:K"
         ~doc:"Run a single cell of the grid, with exactly the seeds the full \
               sweep would derive for it (the cell must be on the grid).")

let telemetry =
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE"
         ~doc:"Write per-cell wall times, counters, histograms, GC deltas and \
               span trees as JSON.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write the sweep timeline as Chrome trace-event JSON (one track \
               per domain; open in ui.perfetto.dev).")

let events =
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
         ~doc:"Write a structured JSONL event log (one line per accepted \
               dynamics move and per finished cell).")

let quiet =
  Arg.(value & flag & info [ "quiet" ]
         ~doc:"Suppress the live progress line on stderr.")

let no_progress =
  Arg.(value & flag & info [ "no-progress" ]
         ~doc:"Explicitly disable the live progress line (it is also \
               auto-suppressed whenever stderr is not an interactive TTY).")

let no_probes =
  Arg.(value & flag & info [ "no-probes" ]
         ~doc:"Skip the round-level convergence probes of each cell's \
               exemplar trial. The CSV is byte-identical either way; only \
               the telemetry/store payloads shrink.")

let fault_plan_spec =
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"SPEC"
         ~doc:"Deterministic fault-injection plan, e.g. \
               'sweep.cell=raise@p:0.3,record_log.append=short:8@nth:2' \
               (see docs/ROBUSTNESS.md).")

let fault_seed =
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"Seed of the fault plan's probability draws.")

let max_retries =
  Arg.(value & opt int 0 & info [ "max-retries" ] ~docv:"N"
         ~doc:"Extra attempts per failing cell before quarantine.")

let retry_backoff_ms =
  Arg.(value & opt float 0. & info [ "retry-backoff-ms" ] ~docv:"MS"
         ~doc:"Linear retry backoff: attempt $(i,i) sleeps MS*i first.")

let cell_deadline_ms =
  Arg.(value & opt float 0. & info [ "cell-deadline-ms" ] ~docv:"MS"
         ~doc:"Wall-clock deadline per cell attempt (0 = none).")

let move_budget =
  Arg.(value & opt int 1_000_000 & info [ "move-budget" ] ~docv:"N"
         ~doc:"Cooperative checkpoint polls allowed per player move \
               (0 = unlimited); an exhausted budget fails the move's \
               cell with a timeout.")

let by_cell_seeds =
  Arg.(value & flag & info [ "by-cell-seeds" ]
         ~doc:"Derive each cell's seed from (seed, alpha, k) instead of \
               its grid position, matching the sweep service's \
               derivation: overlapping grids then agree on every shared \
               cell, at the cost of different results from the default \
               (position-keyed) derivation.")

let cmd =
  let doc = "grid experiments over (alpha, k) printing CSV series" in
  Cmd.v
    (Cmd.info "ncg_experiment" ~doc)
    Term.(const run $ graph_class $ n $ p $ alphas $ ks $ trials $ seed $ budget
          $ domains $ store_dir $ resume $ no_cache $ only_cell $ telemetry
          $ trace_out $ events $ quiet $ no_progress $ no_probes
          $ fault_plan_spec $ fault_seed $ max_retries $ retry_backoff_ms
          $ cell_deadline_ms $ move_budget $ by_cell_seeds)

let () = exit (Cmd.eval cmd)
