(* Sweep dashboard: live view of a running experiment's events JSONL, and
   post-hoc Markdown convergence reports from telemetry documents.

   Live mode (default) tails the file a sweep writes under --events:

     dune exec bin/ncg_top.exe -- events.jsonl            # follow
     dune exec bin/ncg_top.exe -- --once events.jsonl     # one frame (CI)
     dune exec bin/ncg_top.exe -- unix:ncg.sock           # watch a daemon
     dune exec bin/ncg_top.exe -- tcp:host:7214           # ... remotely

   Besides regular files (polled by offset), the EVENTS argument may be
   a service address (unix:PATH / tcp:HOST:PORT — ncg_top subscribes to
   a running ncg_served daemon's event stream) or a FIFO (lines arrive
   pushed; mkfifo + redirect a subscriber into it).

   It renders a progress grid over the (alpha, k) plane from sweep.cell
   events (and their service.* counterparts emitted by ncg_served),
   convergence sparklines from dynamics.round events (emitted when
   probes and events are both enabled), and the latest retry /
   quarantine alerts. Torn or foreign lines are counted and skipped — a
   live tail always sees partial writes.

   Post-hoc mode renders a Markdown convergence report from any telemetry
   document with a "cells" list (ncg.experiment.telemetry/4,
   ncg.bench.experiment/3, ncg.bench.fullgrid/1):

     dune exec bin/ncg_top.exe -- --post-hoc --telemetry telemetry.json \
       [--compare other.json] [--out report.md]

   Unlike the live tail, post-hoc input is a complete artifact: any parse
   error is fatal (exit 1), which is what CI runs it for. *)

module Json = Ncg_obs.Json
module Markdown = Ncg_reporting.Markdown
module Timeseries = Ncg_obs.Timeseries

let member name = function
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let num_opt = function
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

let int_opt = function Some (Json.Int i) -> Some i | _ -> None

let str_opt = function Some (Json.String s) -> Some s | _ -> None

(* --- Live mode ------------------------------------------------------------- *)

(* Cell key: (alpha, k). Floats compare exactly here because both sides
   of every comparison come from the same JSON round-trip. *)
type key = float * int

type status = Done | Cached | Quarantined

type wstat = {
  mutable wstate : string;
  mutable wleases : int;
  mutable wdone : int;
  mutable wexpired : int;
}

type live = {
  cells : (key, status) Hashtbl.t;
  retries : (key, int) Hashtbl.t;
  series : (key, (int * float * int) list ref) Hashtbl.t;
      (* newest-first (round, social_cost, awake) from dynamics.round *)
  workers : (string, wstat) Hashtbl.t;  (* from service.worker_* events *)
  mutable total : int;
  mutable finished : int;
  mutable events : int;
  mutable skipped : int;  (* torn / unparseable lines *)
  mutable alerts : string list;  (* newest first, capped *)
}

let new_live () =
  {
    cells = Hashtbl.create 64;
    retries = Hashtbl.create 16;
    series = Hashtbl.create 64;
    workers = Hashtbl.create 8;
    total = 0;
    finished = 0;
    events = 0;
    skipped = 0;
    alerts = [];
  }

let wstat_of st name =
  match Hashtbl.find_opt st.workers name with
  | Some w -> w
  | None ->
      let w = { wstate = "healthy"; wleases = 0; wdone = 0; wexpired = 0 } in
      Hashtbl.replace st.workers name w;
      w

let alert st line =
  st.alerts <- (line :: st.alerts) |> List.filteri (fun i _ -> i < 6)

let key_of_event j =
  match (num_opt (member "alpha" j), int_opt (member "k" j)) with
  | Some alpha, Some k -> Some (alpha, k)
  | _ -> None

let process_line st line =
  if String.trim line = "" then ()
  else
    match Json.of_string line with
    | Error _ -> st.skipped <- st.skipped + 1
    | Ok j -> (
        st.events <- st.events + 1;
        match str_opt (member "event" j) with
        | Some "sweep.cell" -> (
            (match int_opt (member "total" j) with
            | Some t -> st.total <- max st.total t
            | None -> ());
            (match int_opt (member "done" j) with
            | Some d -> st.finished <- max st.finished d
            | None -> ());
            match key_of_event j with
            | None -> ()
            | Some key ->
                let cached =
                  match member "cached" j with Some (Json.Bool b) -> b | _ -> false
                in
                Hashtbl.replace st.cells key (if cached then Cached else Done))
        | Some "sweep.cell.quarantined" -> (
            (match int_opt (member "done" j) with
            | Some d -> st.finished <- max st.finished d
            | None -> ());
            match key_of_event j with
            | None -> ()
            | Some ((alpha, k) as key) ->
                Hashtbl.replace st.cells key Quarantined;
                alert st
                  (Printf.sprintf "QUARANTINED alpha=%g k=%d after %s attempt(s): %s"
                     alpha k
                     (match int_opt (member "attempts" j) with
                     | Some a -> string_of_int a
                     | None -> "?")
                     (Option.value (str_opt (member "error" j)) ~default:"?")))
        | Some "sweep.cell.attempt_failed" -> (
            match key_of_event j with
            | None -> ()
            | Some ((alpha, k) as key) ->
                let prev = Option.value (Hashtbl.find_opt st.retries key) ~default:0 in
                Hashtbl.replace st.retries key (prev + 1);
                alert st
                  (Printf.sprintf "retry alpha=%g k=%d attempt %s (%s)%s" alpha k
                     (match int_opt (member "attempt" j) with
                     | Some a -> string_of_int a
                     | None -> "?")
                     (Option.value (str_opt (member "error" j)) ~default:"?")
                     (match member "will_retry" j with
                     | Some (Json.Bool false) -> " — giving up"
                     | _ -> "")))
        (* The ncg_served daemon speaks its own event vocabulary; map it
           onto the same grid so one dashboard serves both sources. A
           subscriber can watch several jobs at once, so totals are the
           running sum of distinct queued work (cached cells resolve
           instantly and are marked directly). *)
        | Some "service.submit" ->
            (match int_opt (member "total" j) with
            | Some t -> st.total <- st.total + t
            | None -> ());
            (match int_opt (member "cached" j) with
            | Some c -> st.finished <- st.finished + c
            | None -> ())
        | Some "service.lease" ->
            (match str_opt (member "worker" j) with
            | Some name -> (wstat_of st name).wleases <- (wstat_of st name).wleases + 1
            | None -> ())
        | Some "service.complete" -> (
            st.finished <- st.finished + 1;
            (match str_opt (member "worker" j) with
            | Some name -> (wstat_of st name).wdone <- (wstat_of st name).wdone + 1
            | None -> ());
            match key_of_event j with
            | None -> ()
            | Some key -> Hashtbl.replace st.cells key Done)
        | Some "service.requeue" -> (
            match key_of_event j with
            | None -> ()
            | Some ((alpha, k) as key) ->
                let prev = Option.value (Hashtbl.find_opt st.retries key) ~default:0 in
                Hashtbl.replace st.retries key (prev + 1);
                alert st
                  (Printf.sprintf "requeue alpha=%g k=%d (%s)" alpha k
                     (Option.value (str_opt (member "reason" j)) ~default:"?")))
        | Some "service.quarantine" -> (
            st.finished <- st.finished + 1;
            match key_of_event j with
            | None -> ()
            | Some ((alpha, k) as key) ->
                Hashtbl.replace st.cells key Quarantined;
                alert st
                  (Printf.sprintf "QUARANTINED alpha=%g k=%d: %s" alpha k
                     (Option.value (str_opt (member "error" j)) ~default:"?")))
        | Some "service.job_expired" ->
            alert st
              (Printf.sprintf "job %s EXPIRED before completing"
                 (match int_opt (member "job" j) with
                 | Some id -> string_of_int id
                 | None -> "?"))
        | Some
            (( "service.worker_registered" | "service.worker_suspect"
             | "service.worker_quarantined" | "service.worker_readmitted"
             | "service.worker_recovered" | "service.worker_lost" ) as ev) -> (
            match str_opt (member "worker" j) with
            | None -> ()
            | Some name ->
                let w = wstat_of st name in
                (match ev with
                | "service.worker_registered" | "service.worker_recovered" ->
                    w.wstate <- "healthy"
                | "service.worker_suspect" | "service.worker_readmitted" ->
                    w.wstate <- "suspect"
                | "service.worker_quarantined" -> w.wstate <- "quarantined"
                | _ -> w.wstate <- "drained");
                match ev with
                | "service.worker_quarantined" ->
                    alert st (Printf.sprintf "worker %s QUARANTINED" name)
                | "service.worker_suspect" ->
                    alert st (Printf.sprintf "worker %s silent (suspect)" name)
                | "service.worker_readmitted" ->
                    alert st (Printf.sprintf "worker %s readmitted on probation" name)
                | _ -> ())
        | Some "service.lease_expired" -> (
            match str_opt (member "worker" j) with
            | None -> ()
            | Some name ->
                let w = wstat_of st name in
                w.wexpired <- w.wexpired + 1;
                alert st
                  (Printf.sprintf "lease %s EXPIRED on silent worker %s"
                     (match int_opt (member "task" j) with
                     | Some id -> string_of_int id
                     | None -> "?")
                     name))
        | Some "service.cancel" ->
            alert st
              (Printf.sprintf "job %s cancelled (released %s, revoked %s)"
                 (match int_opt (member "job" j) with
                 | Some id -> string_of_int id
                 | None -> "?")
                 (match int_opt (member "released" j) with
                 | Some n -> string_of_int n
                 | None -> "?")
                 (match int_opt (member "revoked" j) with
                 | Some n -> string_of_int n
                 | None -> "?"))
        | Some "dynamics.round" -> (
            match
              ( key_of_event j,
                int_opt (member "round" j),
                num_opt (member "social_cost" j),
                int_opt (member "awake" j) )
            with
            | Some key, Some round, Some sc, Some awake ->
                let cell =
                  match Hashtbl.find_opt st.series key with
                  | Some r -> r
                  | None ->
                      let r = ref [] in
                      Hashtbl.add st.series key r;
                      r
                in
                cell := (round, sc, awake) :: !cell
            | _ -> ())
        | _ -> ())

let sorted_uniq compare l = List.sort_uniq compare l

let grid_lines st =
  let keys =
    (Hashtbl.fold [@lint.allow "D3" "keys are sort_uniq-ed below"])
      (fun k _ acc -> k :: acc)
      st.cells []
  in
  if keys = [] then [ "waiting for sweep.cell events..." ]
  else begin
    let alphas = sorted_uniq compare (List.map fst keys) in
    let ks = sorted_uniq compare (List.map snd keys) in
    let header =
      Printf.sprintf "%8s %s" "alpha\\k"
        (String.concat " " (List.map (Printf.sprintf "%5d") ks))
    in
    let row alpha =
      let marks =
        List.map
          (fun k ->
            let c =
              match Hashtbl.find_opt st.cells (alpha, k) with
              | Some Done ->
                  if Hashtbl.mem st.retries (alpha, k) then '!' else '#'
              | Some Cached -> 'c'
              | Some Quarantined -> 'X'
              | None -> '.'
            in
            Printf.sprintf "%5s" (String.make 1 c))
          ks
      in
      Printf.sprintf "%8g %s" alpha (String.concat " " marks)
    in
    (header :: List.map row alphas)
    @ [ "legend: # done   c cached   ! done after retry   X quarantined   . pending" ]
  end

let spark_lines st =
  let cells =
    (Hashtbl.fold [@lint.allow "D3" "fully ordered by the sort below"])
      (fun key series acc -> (key, List.rev !series) :: acc)
      st.series []
  in
  let cells =
    (* Longest series first; ties broken by (alpha, k) so the frame does
       not depend on hash order. *)
    List.sort
      (fun (ka, a) (kb, b) ->
        match compare (List.length b) (List.length a) with
        | 0 -> compare ka kb
        | c -> c)
      (List.filter (fun (_, s) -> s <> []) cells)
  in
  match cells with
  | [] -> []
  | _ ->
      let top = List.filteri (fun i _ -> i < 4) cells in
      let chart title pick =
        let series =
          List.map
            (fun (((alpha, k) : key), samples) ->
              {
                Ncg_stats.Ascii_chart.label = Printf.sprintf "a=%g k=%d" alpha k;
                points =
                  List.filter_map
                    (fun (round, sc, awake) ->
                      let y = pick sc awake in
                      if Float.is_finite y then Some (float_of_int round, y)
                      else None)
                    samples;
              })
            top
        in
        title :: [ Ncg_stats.Ascii_chart.render ~width:56 ~height:10 series ]
      in
      chart "social cost by round (most-sampled cells):" (fun sc _ -> sc)
      @ chart "awake players by round:" (fun _ awake -> float_of_int awake)

let render st =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let quarantined =
    (Hashtbl.fold [@lint.allow "D3" "order-independent count"])
      (fun _ s acc -> if s = Quarantined then acc + 1 else acc)
      st.cells 0
  in
  let cached =
    (Hashtbl.fold [@lint.allow "D3" "order-independent count"])
      (fun _ s acc -> if s = Cached then acc + 1 else acc)
      st.cells 0
  in
  line "ncg_top — sweep dashboard";
  line "cells: %d/%s done (%d cached, %d quarantined) — %d events, %d skipped lines"
    st.finished
    (if st.total > 0 then string_of_int st.total else "?")
    cached quarantined st.events st.skipped;
  line "";
  List.iter (fun l -> line "%s" l) (grid_lines st);
  (let workers =
     (Hashtbl.fold [@lint.allow "D3" "sorted before render"])
       (fun name w acc -> (name, w) :: acc)
       st.workers []
     |> List.sort (fun (a, _) (b, _) -> compare a b)
   in
   match workers with
   | [] -> ()
   | workers ->
       line "";
       line "workers:";
       List.iter
         (fun (name, w) ->
           line "  %-20s %-11s leased=%d done=%d expired=%d" name w.wstate
             w.wleases w.wdone w.wexpired)
         workers);
  (match spark_lines st with
  | [] -> ()
  | lines ->
      line "";
      List.iter (fun l -> line "%s" l) lines);
  (match st.alerts with
  | [] -> ()
  | alerts ->
      line "";
      line "alerts (newest first):";
      List.iter (fun a -> line "  %s" a) alerts);
  Buffer.contents b

(* Reads complete lines appended since [pos]; a trailing partial line is
   left for the next poll. *)
let read_new path pos =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len <= pos then (pos, [])
      else begin
        seek_in ic pos;
        let chunk = really_input_string ic (len - pos) in
        match String.rindex_opt chunk '\n' with
        | None -> (pos, [])
        | Some i ->
            let complete = String.sub chunk 0 i in
            (pos + i + 1, String.split_on_char '\n' complete)
      end)

let clear_and_render st =
  if Unix.isatty Unix.stdout then print_string "\027[2J\027[H";
  print_string (render st);
  flush stdout

let live_file path once interval =
  let st = new_live () in
  let pos = ref 0 in
  let step () =
    let np, lines = read_new path !pos in
    pos := np;
    List.iter (process_line st) lines
  in
  if once then begin
    step ();
    print_string (render st);
    0
  end
  else begin
    Sys.catch_break true;
    (try
       while true do
         step ();
         clear_and_render st;
         Unix.sleepf interval
       done
     with Sys.Break -> print_newline ());
    0
  end

(* Pushed sources (a daemon subscription or a FIFO) block on read, so a
   reader thread feeds lines into a queue and the render loop wakes on
   its own clock. --once drains the stream to EOF first — useful for
   FIFOs with a finite writer; against a live daemon it renders when the
   daemon shuts down. *)
let live_stream ic once interval =
  let st = new_live () in
  if once then begin
    (try
       while true do
         process_line st (input_line ic)
       done
     with End_of_file | Sys_error _ -> ());
    print_string (render st);
    0
  end
  else begin
    let pending = Queue.create () in
    let mutex = Mutex.create () in
    let eof = ref false in
    let _reader =
      Thread.create
        (fun () ->
          (try
             while true do
               let line = input_line ic in
               Mutex.lock mutex;
               Queue.push line pending;
               Mutex.unlock mutex
             done
           with End_of_file | Sys_error _ -> ());
          Mutex.lock mutex;
          eof := true;
          Mutex.unlock mutex)
        ()
    in
    Sys.catch_break true;
    let finished = ref false in
    (try
       while not !finished do
         Mutex.lock mutex;
         while not (Queue.is_empty pending) do
           process_line st (Queue.pop pending)
         done;
         let at_eof = !eof in
         Mutex.unlock mutex;
         clear_and_render st;
         if at_eof then finished := true else Unix.sleepf interval
       done;
       if !finished then print_endline "ncg_top: event stream closed"
     with Sys.Break -> print_newline ());
    0
  end

(* Subscribe to a running ncg_served daemon: hello, subscribe, then the
   connection carries raw event lines until either side closes. *)
let subscribe_to_daemon addr =
  let module Protocol = Ncg_service.Protocol in
  let ic, oc = Protocol.connect addr in
  let rpc req =
    Protocol.send_line oc (Protocol.request_to_json req);
    match Protocol.recv_line ic with
    | Ok (Some j) -> Protocol.response_of_json j
    | Ok None -> Error "daemon hung up"
    | Error msg -> Error msg
  in
  let check = function
    | Ok (Protocol.Resp_ok _) -> Ok ()
    | Ok (Protocol.Resp_error msg) -> Error msg
    | Error msg -> Error msg
  in
  match check (rpc (Protocol.Hello { client = Printf.sprintf "ncg_top-%d" (Unix.getpid ()); worker = false })) with
  | Error msg -> Error msg
  | Ok () -> (
      match check (rpc Protocol.Subscribe) with
      | Error msg -> Error msg
      | Ok () -> Ok ic)

let live path once interval =
  let looks_like_addr =
    String.length path > 4
    && (String.sub path 0 5 = "unix:"
        || (String.length path > 3 && String.sub path 0 4 = "tcp:"))
  in
  if looks_like_addr then begin
    match Ncg_service.Protocol.parse_addr path with
    | Error msg ->
        Printf.eprintf "ncg_top: %s\n" msg;
        2
    | Ok addr -> (
        match subscribe_to_daemon addr with
        | Ok ic -> live_stream ic once interval
        | Error msg ->
            Printf.eprintf "ncg_top: cannot subscribe to %s: %s\n" path msg;
            1
        | exception Unix.Unix_error (e, _, _) ->
            Printf.eprintf "ncg_top: cannot connect to %s: %s\n" path
              (Unix.error_message e);
            1)
  end
  else if not (Sys.file_exists path) then begin
    Printf.eprintf "ncg_top: %s: no such file\n" path;
    2
  end
  else if (Unix.stat path).Unix.st_kind = Unix.S_FIFO then begin
    (* Opening a FIFO read-only blocks until a writer appears — exactly
       the "waiting for the sweep to start" behaviour we want. *)
    let ic = open_in_bin path in
    live_stream ic once interval
  end
  else live_file path once interval

(* --- Post-hoc mode --------------------------------------------------------- *)

exception Bad_input of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad_input s)) fmt

type ph_cell = {
  ph_alpha : float;
  ph_k : int;
  ph_wall : float option;
  ph_rounds : float option;
  ph_quality : float option;
  ph_converged : float option;
  ph_probes : Ncg_obs.Probe.snapshot;
}

let read_doc path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error e -> failf "%s: %s" path e
  in
  match Json.of_string contents with
  | Ok j -> j
  | Error e -> failf "%s: %s" path e

(* Any document with a "cells" list is accepted — the experiment
   telemetry and both bench outputs share the per-cell shape this report
   needs. *)
let load_cells path =
  let j = read_doc path in
  let schema = Option.value (str_opt (member "schema" j)) ~default:"(no schema)" in
  let cells =
    match member "cells" j with
    | Some (Json.List cells) -> cells
    | _ -> failf "%s: no \"cells\" list (schema %s)" path schema
  in
  let parse i c =
    let ctx = Printf.sprintf "%s: cells[%d]" path i in
    let req name =
      match num_opt (member name c) with
      | Some v -> v
      | None -> failf "%s: missing %s" ctx name
    in
    {
      ph_alpha = req "alpha";
      ph_k = int_of_float (req "k");
      ph_wall = num_opt (member "wall_seconds" c);
      ph_rounds = num_opt (member "rounds_mean" c);
      ph_quality = num_opt (member "quality_mean" c);
      ph_converged = num_opt (member "converged_frac" c);
      ph_probes =
        (match member "probes" c with
        | None -> []
        | Some pj -> (
            match Ncg_obs.Probe.of_json pj with
            | Ok snap -> snap
            | Error e -> failf "%s: probes: %s" ctx e));
    }
  in
  (schema, List.mapi parse cells)

let probe_samples cell name =
  match List.assoc_opt name cell.ph_probes with
  | None -> []
  | Some ts -> Timeseries.to_list ts

let fmt_opt = function Some f -> Printf.sprintf "%.4g" f | None -> "-"

let fmt_num = Printf.sprintf "%.4g"

let cell_label c = Printf.sprintf "alpha=%g k=%d" c.ph_alpha c.ph_k

let summary_table md cells =
  Markdown.table md
    ~header:
      [ "alpha"; "k"; "wall s"; "rounds"; "quality"; "converged"; "probe samples" ]
    (List.map
       (fun c ->
         [
           fmt_num c.ph_alpha;
           string_of_int c.ph_k;
           fmt_opt c.ph_wall;
           fmt_opt c.ph_rounds;
           fmt_opt c.ph_quality;
           fmt_opt c.ph_converged;
           string_of_int
             (List.length (probe_samples c (Ncg_obs.Probe.name Ncg_obs.Probe.social_cost)));
         ])
       cells)

let convergence_section md c =
  let sc = probe_samples c (Ncg_obs.Probe.name Ncg_obs.Probe.social_cost) in
  let awake = probe_samples c (Ncg_obs.Probe.name Ncg_obs.Probe.awake_players) in
  Markdown.heading md 2 (Printf.sprintf "Convergence: %s (trial-0 exemplar)" (cell_label c));
  Markdown.table md
    ~header:[ "round"; "social cost"; "awake players" ]
    (List.map
       (fun (x, y) ->
         [
           string_of_int (int_of_float x);
           fmt_num y;
           (match List.assoc_opt x awake with Some a -> fmt_num a | None -> "-");
         ])
       sc);
  let chart label points =
    {
      Ncg_stats.Ascii_chart.label;
      points = List.filter (fun (_, y) -> Float.is_finite y) points;
    }
  in
  Markdown.code_block md
    (Ncg_stats.Ascii_chart.render ~width:56 ~height:12 [ chart "social cost" sc ]);
  Markdown.code_block md
    (Ncg_stats.Ascii_chart.render ~width:56 ~height:10
       [ chart "awake players" awake ])

let comparison_section md ~path_a ~path_b cells_a cells_b =
  Markdown.heading md 2 "Cross-run comparison";
  Markdown.paragraph md
    (Printf.sprintf "A = `%s`, B = `%s`; cells matched on (alpha, k)." path_a path_b);
  let final_sc c =
    match
      Timeseries.last
        (Option.value
           (List.assoc_opt (Ncg_obs.Probe.name Ncg_obs.Probe.social_cost) c.ph_probes)
           ~default:(Timeseries.create ()))
    with
    | Some (_, y) -> Some y
    | None -> None
  in
  let rows =
    List.filter_map
      (fun a ->
        match
          List.find_opt (fun b -> b.ph_alpha = a.ph_alpha && b.ph_k = a.ph_k) cells_b
        with
        | None -> None
        | Some b ->
            Some
              [
                fmt_num a.ph_alpha;
                string_of_int a.ph_k;
                fmt_opt a.ph_wall;
                fmt_opt b.ph_wall;
                fmt_opt a.ph_rounds;
                fmt_opt b.ph_rounds;
                fmt_opt (final_sc a);
                fmt_opt (final_sc b);
              ])
      cells_a
  in
  Markdown.table md
    ~header:
      [
        "alpha"; "k"; "wall A"; "wall B"; "rounds A"; "rounds B"; "final SC A";
        "final SC B";
      ]
    rows;
  let unmatched =
    List.filter
      (fun a ->
        not
          (List.exists (fun b -> b.ph_alpha = a.ph_alpha && b.ph_k = a.ph_k) cells_b))
      cells_a
  in
  if unmatched <> [] then
    Markdown.paragraph md
      (Printf.sprintf "%d cell(s) of A have no (alpha, k) match in B: %s."
         (List.length unmatched)
         (String.concat ", " (List.map cell_label unmatched)))

let post_hoc telemetry compare_with out =
  try
    let schema, cells = load_cells telemetry in
    let md = Markdown.create () in
    Markdown.heading md 1 "Convergence report";
    Markdown.paragraph md
      (Printf.sprintf "Source: `%s` (schema `%s`), %d cells." telemetry schema
         (List.length cells));
    summary_table md cells;
    let with_series =
      List.sort
        (fun a b ->
          compare
            (List.length (probe_samples b (Ncg_obs.Probe.name Ncg_obs.Probe.social_cost)))
            (List.length (probe_samples a (Ncg_obs.Probe.name Ncg_obs.Probe.social_cost))))
        (List.filter
           (fun c ->
             probe_samples c (Ncg_obs.Probe.name Ncg_obs.Probe.social_cost) <> [])
           cells)
    in
    (match with_series with
    | [] ->
        Markdown.paragraph md
          "No probe series in this document — run the sweep with probes enabled \
           (they are on by default; check for --no-probes)."
    | _ -> List.iter (convergence_section md) (List.filteri (fun i _ -> i < 3) with_series));
    (match compare_with with
    | None -> ()
    | Some other ->
        let _, cells_b = load_cells other in
        comparison_section md ~path_a:telemetry ~path_b:other cells cells_b);
    let rendered = Markdown.to_string md in
    (match out with
    | Some path ->
        Ncg_obs.Atomic_file.write path rendered;
        Printf.printf "wrote %s\n" path
    | None -> print_string rendered);
    0
  with Bad_input msg ->
    Printf.eprintf "ncg_top: %s\n" msg;
    1

(* --- CLI ------------------------------------------------------------------- *)

open Cmdliner

let events_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"EVENTS"
        ~doc:"Event source for live mode: a JSONL file written by a sweep's \
              --events flag, a FIFO carrying event lines, or a running \
              ncg_served daemon's address (unix:PATH or tcp:HOST:PORT) to \
              subscribe to.")

let once_arg =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:"Render a single frame from the current file contents and exit \
              (for CI and replays) instead of following the file.")

let interval_arg =
  Arg.(
    value & opt float 0.5
    & info [ "interval" ] ~docv:"SECONDS" ~doc:"Polling interval in follow mode.")

let post_hoc_arg =
  Arg.(
    value & flag
    & info [ "post-hoc" ]
        ~doc:"Render a Markdown convergence report from $(b,--telemetry) instead \
              of tailing an events file. Parse errors are fatal (exit 1).")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Telemetry JSON document (any schema with a per-cell \"cells\" list: \
           ncg.experiment.telemetry/4, ncg.bench.experiment/3, \
           ncg.bench.fullgrid/1).")

let compare_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "compare" ] ~docv:"FILE"
        ~doc:"Second telemetry document; adds a cross-run comparison table \
              matched on (alpha, k).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the post-hoc report here (atomically) instead of stdout.")

let run events once interval post_hoc_mode telemetry compare_with out =
  if post_hoc_mode then
    match telemetry with
    | None ->
        prerr_endline "ncg_top: --post-hoc requires --telemetry FILE";
        2
    | Some t -> post_hoc t compare_with out
  else
    match events with
    | None ->
        prerr_endline
          "ncg_top: an EVENTS.jsonl argument is required in live mode (or use \
           --post-hoc)";
        2
    | Some path -> live path once interval

let cmd =
  let doc = "live sweep dashboard and post-hoc convergence reports" in
  Cmd.v
    (Cmd.info "ncg_top" ~doc)
    Term.(
      const run $ events_arg $ once_arg $ interval_arg $ post_hoc_arg
      $ telemetry_arg $ compare_arg $ out_arg)

let () = exit (Cmd.eval' cmd)
