(* What can a player rule out? This walk-through makes the paper's
   worst-case reasoning (Eq. (3), Propositions 2.1/2.2) tangible: a player
   evaluates a deviation against every network consistent with her view,
   and we build some of those networks explicitly.

   Run with:  dune exec examples/realizable_worlds.exe *)

module Graph = Ncg_graph.Graph
module Strategy = Ncg.Strategy
module View = Ncg.View
module Realizable = Ncg.Realizable
module Lke = Ncg.Lke
module Rng = Ncg_prng.Rng

let () =
  (* A path 0-1-2-3-4-5-6; player 3 sits in the middle with k = 2. *)
  let n = 7 in
  let s = Strategy.of_buys ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let g = Strategy.graph s in
  let u = 3 and k = 2 in
  let view = View.extract s g ~k u in
  Printf.printf "Player %d, k = %d: sees %d of %d vertices.\n" u k (View.size view) n;
  Printf.printf "Frontier (distance exactly k): %s\n\n"
    (String.concat ", "
       (List.map string_of_int (View.to_host view (View.frontier view))));

  (* Three realizable worlds: the truth could be any of them. *)
  let rng = Rng.create 7 in
  List.iter
    (fun extra ->
      let r = Realizable.extend rng view ~extra in
      Printf.printf "A realizable world with %2d invisible vertices: %d vertices, %d edges (certified: %b)\n"
        extra
        (Graph.order r.Realizable.graph)
        (Graph.size r.Realizable.graph)
        (Realizable.is_realizable view r.Realizable.graph))
    [ 0; 3; 12 ];
  print_newline ();

  (* The Max game: dropping the owned edge towards 4 cuts the visible
     frontier vertex 5 off in every world -> infinitely bad. *)
  let delta_drop = Lke.delta_max ~alpha:1.0 view [] in
  Printf.printf "MaxNCG worst-case delta of dropping all edges: %s\n"
    (if delta_drop = infinity then "infinite (frontier cut in every world)"
     else Printf.sprintf "%g" delta_drop);

  (* A benign deviation: additionally buying the frontier vertex. *)
  let frontier_target = List.hd (View.frontier view) in
  let deviation = frontier_target :: view.View.owned in
  Printf.printf "MaxNCG worst-case delta of also buying a frontier vertex: %+.1f\n"
    (Lke.delta_max ~alpha:1.0 view deviation);

  (* The Sum game punishes frontier-touching deviations much harder:
     swapping the owned edge (3,4) for (3,5) pushes the frontier vertex
     outwards; a long invisible chain behind it makes the real damage as
     large as the adversary wants. *)
  let five = List.hd (View.of_host view [ 5 ]) in
  let swap = [ five ] in
  Printf.printf "\nSumNCG: is the swap (3,4) -> (3,5) admissible? %b\n"
    (Ncg.Sum_best_response.admissible view swap);
  Printf.printf "SumNCG worst-case delta of that swap: %s\n"
    (let d = Lke.delta_sum ~alpha:1.0 view swap in
     if d = infinity then "infinite" else Printf.sprintf "%+.1f" d);
  let anchor = frontier_target in
  List.iter
    (fun len ->
      let r = Realizable.attach_chain view ~anchor ~length:len in
      let dist = Ncg_graph.Bfs.distances r.Realizable.graph view.View.player in
      let sum = Array.fold_left ( + ) 0 dist in
      Printf.printf
        "  world with a %2d-vertex chain behind the frontier: player's distance sum = %d\n"
        len sum)
    [ 2; 8; 32 ];
  print_newline ();
  print_endline
    "Reading: the player cannot distinguish these worlds, so she must plan";
  print_endline
    "for the worst one — that is the Local Knowledge Equilibrium's logic."
