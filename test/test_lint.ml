(* Tests for ncg_lint: per-rule accepting and rejecting fixture
   snippets, suppression semantics, a golden JSON report snapshot, and
   the assertion that the live codebase lints clean. *)

module Lint = Ncg_lint.Lint
module Rules = Ncg_lint.Rules
module Report = Ncg_lint.Report
module Json = Ncg_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let known_sites = [ "sweep.cell"; "bfs.traverse" ]
let known_probes = [ "dynamics.social_cost"; "solver.bb_cutoffs" ]

(* Zone contexts, derived exactly as the driver derives them. *)
let lib_ctx = Lint.ctx_for_path ~known_sites ~known_probes "lib/core/fixture.ml"
let bin_ctx = Lint.ctx_for_path ~known_sites ~known_probes "bin/fixture.ml"
let prng_ctx = Lint.ctx_for_path ~known_sites ~known_probes "lib/prng/fixture.ml"
let obs_ctx = Lint.ctx_for_path ~known_sites ~known_probes "lib/obs/fixture.ml"
let fault_ctx = Lint.ctx_for_path ~known_sites ~known_probes "lib/fault/fixture.ml"

let rules_of ?(ctx = lib_ctx) source =
  let r = Lint.check_source ~ctx ~filename:"fixture.ml" source in
  (match r.Lint.parse_error with
  | Some msg -> Alcotest.failf "fixture failed to parse: %s" msg
  | None -> ());
  List.map (fun (v : Lint.violation) -> v.Lint.rule) r.Lint.violations

let accepts ?ctx source = check_bool source true (rules_of ?ctx source = [])

let rejects ?ctx rule source =
  check_bool source true (List.mem rule (rules_of ?ctx source))

let test_zones () =
  check_bool "lib/prng exempt from D1" true lib_ctx.Lint.global_state;
  check_bool "prng" true prng_ctx.Lint.prng_exempt;
  check_bool "obs" true obs_ctx.Lint.clock_exempt;
  check_bool "fault" true fault_ctx.Lint.fault_registry;
  check_bool "bin has no global-state rule" false bin_ctx.Lint.global_state;
  check_bool "bin not exempt" false bin_ctx.Lint.prng_exempt

let test_d1 () =
  rejects Rules.D1 "let x = Random.int 5";
  rejects Rules.D1 "let () = Random.self_init ()";
  rejects Rules.D1 "open Random";
  rejects Rules.D1 "let x = Stdlib.Random.bool ()";
  rejects ~ctx:bin_ctx Rules.D1 "let x = Random.int 5";
  accepts ~ctx:prng_ctx "let x = Random.int 5";
  accepts "let x = Ncg_prng.Rng.int rng 5";
  accepts "let random_walk = 3 (* mentions Random only in a comment *)"

let test_d2 () =
  rejects Rules.D2 "let t = Unix.gettimeofday ()";
  rejects Rules.D2 "let t = Unix.time ()";
  rejects Rules.D2 "let t = Sys.time ()";
  accepts ~ctx:obs_ctx "let t = Unix.gettimeofday ()";
  accepts "let pid = Unix.getpid ()";
  accepts "let t = Ncg_obs.Clock.now_ns ()"

let test_d3 () =
  rejects Rules.D3 "let () = Hashtbl.iter f t";
  rejects Rules.D3 "let x = Hashtbl.fold f t []";
  rejects Rules.D3 "let x = Stdlib.Hashtbl.fold f t []";
  (* The rule holds in every zone, including lib/obs and bin. *)
  rejects ~ctx:obs_ctx Rules.D3 "let () = Hashtbl.iter f t";
  rejects ~ctx:bin_ctx Rules.D3 "let () = Hashtbl.iter f t";
  accepts "let x = Hashtbl.find_opt t k";
  accepts "let () = List.iter f xs";
  accepts "let n = Hashtbl.length t"

let test_d4 () =
  rejects Rules.D4 "let s = string_of_float x";
  rejects Rules.D4 "let s = Float.to_string x";
  rejects Rules.D4 {|let () = Printf.printf "%f" x|};
  rejects Rules.D4 {|let s = Printf.sprintf "x=%f" x|};
  rejects Rules.D4 {|let () = Format.printf "%f" x|};
  accepts {|let s = Printf.sprintf "%.17g" x|};
  accepts {|let s = Printf.sprintf "%g" x|};
  accepts {|let s = Printf.sprintf "100%%fun"|};
  accepts {|let s = Printf.sprintf "%d" 3|};
  (* A bare %f outside a printf-family call is just a string. *)
  accepts {|let s = "%f"|}

let test_p1 () =
  rejects Rules.P1 "let count = ref 0";
  rejects Rules.P1 "let cache = Hashtbl.create 16";
  rejects Rules.P1 "let buf = Array.make 4 0";
  rejects Rules.P1 "let b = Buffer.create 64";
  rejects Rules.P1 "let q : int Queue.t = Queue.create ()";
  rejects Rules.P1 "module M = struct let inner = ref 0 end";
  accepts "let x = Atomic.make 0";
  accepts "let k = Domain.DLS.new_key (fun () -> ref 0)";
  accepts "let m = Mutex.create ()";
  accepts "let f () = ref 0 (* local state is fine *)";
  accepts "let xs = [ 1; 2; 3 ]";
  (* P1 is a library rule: executables are single-entry. *)
  accepts ~ctx:bin_ctx "let count = ref 0"

let test_a1 () =
  rejects Rules.A1 {|let oc = open_out "x.json"|};
  rejects Rules.A1 {|let oc = open_out_bin "x.bin"|};
  rejects Rules.A1 {|let oc = Out_channel.open_text "x.txt"|};
  rejects ~ctx:obs_ctx Rules.A1 {|let oc = open_out "x.json"|};
  accepts {|let ic = open_in "x.json"|};
  accepts {|let () = Ncg_obs.Atomic_file.write "x.md" body|}

let test_f1 () =
  rejects Rules.F1 {|let s = Inject.site "no.such.site"|};
  rejects Rules.F1 {|let s = Ncg_fault.Inject.site "no.such.site"|};
  (* Inside lib/fault, a bare [site] call is the registry itself. *)
  rejects ~ctx:fault_ctx Rules.F1 {|let s = site "no.such.site"|};
  accepts {|let s = Inject.site "sweep.cell"|};
  accepts ~ctx:fault_ctx {|let s = site "bfs.traverse"|};
  (* A bare [site] call outside lib/fault is some other function. *)
  accepts {|let s = site "no.such.site"|};
  (* Non-literal arguments cannot be checked syntactically. *)
  accepts {|let s = Inject.site name|}

let test_o1 () =
  rejects Rules.O1 {|let p = Ncg_obs.Probe.find "no.such.probe"|};
  rejects Rules.O1 {|let p = Probe.find "no.such.probe"|};
  rejects Rules.O1 {|let p = Probe.register "no.such.probe"|};
  accepts {|let p = Ncg_obs.Probe.find "dynamics.social_cost"|};
  accepts {|let p = Probe.register "solver.bb_cutoffs"|};
  (* A bare [find] is some other function (Hashtbl.find, List.find...). *)
  accepts {|let p = find "no.such.probe"|};
  accepts {|let x = Hashtbl.find table "no.such.probe"|};
  (* Non-literal arguments cannot be checked syntactically. *)
  accepts {|let p = Ncg_obs.Probe.find name|}

let test_l1 () =
  rejects Rules.L1 {|let x = (Hashtbl.fold [@lint.allow "D3"]) f t []|};
  rejects Rules.L1 {|let x = 1 [@@lint.allow "Z9" "unknown rule"]|};
  rejects Rules.L1 "let cache = Hashtbl.create 16 [@@lint.domain_local]";
  accepts
    {|let x = (Hashtbl.fold [@lint.allow "D3" "sorted before escaping"]) f t []|};
  accepts {|let cache = Hashtbl.create 16 [@@lint.domain_local "init only"]|}

let test_suppressions () =
  (* An allow on the enclosing binding covers violations inside it. *)
  let src =
    {|let s = Printf.sprintf "%f" x [@@lint.allow "D4" "legacy format kept for diffability"]|}
  in
  check_bool "binding-scope allow" true (rules_of src = []);
  let r = Lint.check_source ~ctx:lib_ctx ~filename:"f.ml" src in
  check_int "recorded" 1 (List.length r.Lint.suppressions);
  let s = List.hd r.Lint.suppressions in
  check_string "rule" "D4" (Rules.to_string s.Lint.sup_rule);
  check_string "justification" "legacy format kept for diffability"
    s.Lint.sup_justification;
  (* The suppression is scoped: a second violation outside it still fires. *)
  let src2 =
    src ^ "\n\nlet t = Unix.gettimeofday ()\nlet u = string_of_float 1.0"
  in
  check_bool "scoped" true (rules_of src2 = [ Rules.D2; Rules.D4 ]);
  (* A floating [@@@lint.allow] covers the whole file. *)
  let src3 =
    {|[@@@lint.allow "D2" "fixture: timing scratch file"]
let t = Unix.gettimeofday ()
let u = Sys.time ()|}
  in
  check_bool "file-wide" true (rules_of src3 = []);
  (* One allow can name several rules before the justification. *)
  let src4 =
    {|let f () =
  (Hashtbl.iter [@lint.allow "D3" "D1" "fixture: both rules at once"])
    (fun _ () -> ignore (Random.int 2))
    t|}
  in
  check_bool "multi-rule allow" true
    (match rules_of src4 with [] -> true | [ Rules.D1 ] -> true | _ -> false)

let test_parse_error () =
  let r = Lint.check_source ~ctx:lib_ctx ~filename:"broken.ml" "let let = in" in
  check_bool "parse error recorded" true (r.Lint.parse_error <> None);
  check_int "no violations" 0 (List.length r.Lint.violations);
  check_bool "not clean" false (Report.clean [ r ])

let test_positions () =
  let r =
    Lint.check_source ~ctx:lib_ctx ~filename:"pos.ml"
      "let a = 1\nlet t = Unix.gettimeofday ()\n"
  in
  match r.Lint.violations with
  | [ v ] ->
      check_string "file" "pos.ml" v.Lint.file;
      check_int "line" 2 v.Lint.line;
      check_int "col" 8 v.Lint.col
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

(* --- JSON report ----------------------------------------------------------- *)

let fixture_reports () =
  [
    Lint.check_source ~ctx:lib_ctx ~filename:"lib/core/a.ml"
      "let t = Unix.gettimeofday ()\n";
    Lint.check_source ~ctx:lib_ctx ~filename:"lib/core/b.ml"
      {|let cache = Hashtbl.create 16 [@@lint.domain_local "init-time only"]|};
    Lint.check_source ~ctx:lib_ctx ~filename:"lib/core/broken.ml" "let let";
  ]

let test_report_counts () =
  let reports = fixture_reports () in
  check_int "violations" 1 (Report.violation_count reports);
  check_int "suppressions" 1 (Report.suppression_count reports);
  check_int "parse errors" 1 (List.length (Report.parse_errors reports));
  check_bool "not clean" false (Report.clean reports);
  check_bool "human output mentions rule" true
    (let human = Report.to_human reports in
     let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains human "[D2]" && contains human "PARSE ERROR")

(* Golden snapshot of the machine-readable document: the schema is a
   published artifact (CI uploads it), so its exact shape is pinned. *)
let test_report_golden () =
  let reports =
    [
      Lint.check_source ~ctx:lib_ctx ~filename:"lib/core/a.ml"
        "let t = Unix.gettimeofday ()\n";
    ]
  in
  let doc = Report.to_json ~root:"." reports in
  (* Structure: every top-level field present, in order. *)
  (match doc with
  | Json.Obj fields ->
      check_bool "field order" true
        (List.map fst fields
        = [
            "schema";
            "root";
            "files_checked";
            "violation_count";
            "suppression_count";
            "parse_error_count";
            "rules";
            "violations";
            "suppressions";
            "parse_errors";
          ])
  | _ -> Alcotest.fail "report is not an object");
  (* Byte-exact golden for the violation entry. *)
  let violations =
    match doc with
    | Json.Obj fields -> List.assoc "violations" fields
    | _ -> assert false
  in
  check_string "violation json"
    ("[{\"file\":\"lib/core/a.ml\",\"line\":1,\"col\":8,\"rule\":\"D2\","
   ^ "\"title\":\"wall-clock read outside lib/obs\","
   ^ "\"message\":\"Unix.gettimeofday: wall-clock read outside the Clock \
      module\","
   ^ "\"hint\":\"use Ncg_obs.Clock.now_ns / Clock.elapsed_ns\"}]")
    (Json.to_string violations);
  (* The whole document round-trips through the in-house parser. *)
  match Json.of_string (Json.to_string doc) with
  | Ok v -> check_bool "round-trip" true (v = doc)
  | Error e -> Alcotest.failf "report does not reparse: %s" e

(* --- The live codebase lints clean ----------------------------------------- *)

(* Under [dune runtest] the cwd is _build/default/test and the sources
   live in its parent (dune copies them into the build tree); under
   [dune exec] the cwd is the workspace root itself. Walk upward to the
   nearest directory holding a dune-project. *)
let rec project_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then failwith "no dune-project above the test cwd"
    else project_root parent

let test_live_tree_clean () =
  let root = project_root (Sys.getcwd ()) in
  let files =
    Lint.ml_files_under ~root ~dirs:[ "lib"; "bin"; "bench"; "test"; "examples" ]
  in
  (* The enlarged scan (test/ and examples/ included) must actually pick
     the extra trees up, not silently fall back to the library dirs. *)
  check_bool "found the tree" true (List.length files > 80);
  check_bool "scan includes test/" true
    (List.exists (fun f -> String.length f > 5 && String.sub f 0 5 = "test/") files);
  check_bool "scan includes examples/" true
    (List.exists
       (fun f -> String.length f > 9 && String.sub f 0 9 = "examples/")
       files);
  let known_sites = Ncg_fault.Inject.sites () in
  let known_probes = Ncg_obs.Probe.names () in
  let dirty =
    List.filter_map
      (fun rel ->
        let ctx = Lint.ctx_for_path ~known_sites ~known_probes rel in
        let r = Lint.check_file ~ctx ~display:rel (Filename.concat root rel) in
        if r.Lint.violations = [] && r.Lint.parse_error = None then None
        else Some (Report.to_human [ r ]))
      files
  in
  if dirty <> [] then
    Alcotest.failf "the tree does not lint clean:\n%s" (String.concat "" dirty)

let () =
  Alcotest.run "ncg_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "zones" `Quick test_zones;
          Alcotest.test_case "D1 randomness" `Quick test_d1;
          Alcotest.test_case "D2 wall clock" `Quick test_d2;
          Alcotest.test_case "D3 hash iteration" `Quick test_d3;
          Alcotest.test_case "D4 float formatting" `Quick test_d4;
          Alcotest.test_case "P1 global state" `Quick test_p1;
          Alcotest.test_case "A1 bare open_out" `Quick test_a1;
          Alcotest.test_case "F1 fault sites" `Quick test_f1;
          Alcotest.test_case "O1 probe names" `Quick test_o1;
          Alcotest.test_case "L1 malformed annotations" `Quick test_l1;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "allow scoping" `Quick test_suppressions;
          Alcotest.test_case "parse errors" `Quick test_parse_error;
          Alcotest.test_case "positions" `Quick test_positions;
        ] );
      ( "report",
        [
          Alcotest.test_case "counts + human" `Quick test_report_counts;
          Alcotest.test_case "golden json" `Quick test_report_golden;
        ] );
      ( "live", [ Alcotest.test_case "codebase lints clean" `Quick test_live_tree_clean ] );
    ]
