(* Tests for ncg_lint: per-rule accepting and rejecting fixture
   snippets for the syntactic pass, a smuggling-vector matrix proving
   the typed pass catches what the syntactic pass provably misses,
   fixtures for the semantic-only rules (S1, P2, R1), merge/staleness
   (L2) semantics, a golden JSON snapshot of ncg.lint.report/2, and the
   assertion that the live codebase lints clean under both passes. *)

module Lint = Ncg_lint.Lint
module Typed = Ncg_lint.Typed_lint
module Rules = Ncg_lint.Rules
module Report = Ncg_lint.Report
module Json = Ncg_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let known_sites = [ "sweep.cell"; "bfs.traverse" ]
let known_probes = [ "dynamics.social_cost"; "solver.bb_cutoffs" ]
let known_schemas =
  ([ "ncg.test.alpha/1"; "ncg.test.beta/2" ]
  [@lint.allow
    "R1" "fixture registry for the R1 tests, distinct from the real one"])

(* Zone contexts, derived exactly as the driver derives them. *)
let ctx_for = Lint.ctx_for_path ~known_sites ~known_probes ~known_schemas
let lib_ctx = ctx_for "lib/core/fixture.ml"
let bin_ctx = ctx_for "bin/fixture.ml"
let prng_ctx = ctx_for "lib/prng/fixture.ml"
let obs_ctx = ctx_for "lib/obs/fixture.ml"
let fault_ctx = ctx_for "lib/fault/fixture.ml"
let schema_ctx = ctx_for "lib/obs/schema.ml"

let rules_of ?(ctx = lib_ctx) source =
  let r = Lint.check_source ~ctx ~filename:"fixture.ml" source in
  (match r.Lint.parse_error with
  | Some msg -> Alcotest.failf "fixture failed to parse: %s" msg
  | None -> ());
  List.map (fun (v : Lint.violation) -> v.Lint.rule) r.Lint.violations

let accepts ?ctx source = check_bool source true (rules_of ?ctx source = [])

let rejects ?ctx rule source =
  check_bool source true (List.mem rule (rules_of ?ctx source))

(* --- Typed-pass fixture plumbing ------------------------------------------- *)

(* Under [dune runtest] the cwd is _build/default/test and the sources
   live in its parent (dune copies them into the build tree); under
   [dune exec] the cwd is the workspace root itself. Walk upward to the
   nearest directory holding a dune-project. *)
let rec project_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then failwith "no dune-project above the test cwd"
    else project_root parent

let root = lazy (project_root (Sys.getcwd ()))

(* .cmi directory of a dune library: directly under the project root
   when that root is the build tree (dune runtest), otherwise under
   _build/default (dune exec from the workspace root). *)
let objs_dir sub lib =
  let rel = Printf.sprintf "%s/.%s.objs/byte" sub lib in
  let direct = Filename.concat (Lazy.force root) rel in
  if Sys.file_exists direct then direct
  else Filename.concat (Lazy.force root) (Filename.concat "_build/default" rel)

(* Enough of the project's cmis to type fixtures that borrow scratch
   buffers (Ncg_graph.Bfs, Ncg.Workspace) and fan out (Ncg_util.Parallel);
   the rest are transitive signature dependencies of lib/core. *)
let ncg_dirs =
  lazy
    (List.map
       (fun (sub, lib) -> objs_dir sub lib)
       [
         ("lib/util", "ncg_util");
         ("lib/prng", "ncg_prng");
         ("lib/graph", "ncg_graph");
         ("lib/stats", "ncg_stats");
         ("lib/solver", "ncg_solver");
         ("lib/obs", "ncg_obs");
         ("lib/fault", "ncg_fault");
         ("lib/core", "ncg");
       ])

let unix_dir = lazy (Filename.concat Config.standard_library "unix")

let typed_report ?(ctx = lib_ctx) ?(filename = "fixture.ml") ?(with_ncg = false)
    ?(with_unix = false) source =
  let include_dirs =
    (if with_ncg then Lazy.force ncg_dirs else [])
    @ if with_unix then [ Lazy.force unix_dir ] else []
  in
  Typed.check_source_typed ~ctx ~filename ~include_dirs source

let typed_rules_of ?ctx ?with_ncg ?with_unix source =
  let r = typed_report ?ctx ?with_ncg ?with_unix source in
  (match r.Lint.parse_error with
  | Some msg -> Alcotest.failf "fixture failed to type:\n%s\n---\n%s" source msg
  | None -> ());
  List.map (fun (v : Lint.violation) -> v.Lint.rule) r.Lint.violations

let typed_accepts ?ctx ?with_ncg ?with_unix source =
  check_bool source true (typed_rules_of ?ctx ?with_ncg ?with_unix source = [])

let typed_rejects ?ctx ?with_ncg ?with_unix rule source =
  check_bool source true
    (List.mem rule (typed_rules_of ?ctx ?with_ncg ?with_unix source))

(* --- Zones ----------------------------------------------------------------- *)

let test_zones () =
  check_bool "lib has the global-state rule" true lib_ctx.Lint.global_state;
  check_bool "prng" true prng_ctx.Lint.prng_exempt;
  check_bool "obs" true obs_ctx.Lint.clock_exempt;
  check_bool "fault" true fault_ctx.Lint.fault_registry;
  check_bool "bin has no global-state rule" false bin_ctx.Lint.global_state;
  check_bool "bin not exempt" false bin_ctx.Lint.prng_exempt;
  check_bool "parallel impl zone" true
    (ctx_for "lib/util/parallel.ml").Lint.parallel_impl;
  check_bool "executor is parallel impl too" true
    (ctx_for "lib/fault/executor.ml").Lint.parallel_impl;
  check_bool "bfs lends scratch" true
    (ctx_for "lib/graph/bfs.ml").Lint.scratch_lender;
  check_bool "workspace lends scratch" true
    (ctx_for "lib/core/workspace.ml").Lint.scratch_lender;
  check_bool "schema.ml is the registry" true schema_ctx.Lint.schema_registry;
  check_bool "plain obs files are not" false obs_ctx.Lint.schema_registry

let test_rule_catalogue () =
  check_int "thirteen rules" 13 (List.length Rules.all);
  List.iter
    (fun id ->
      match Rules.of_string (Rules.to_string id) with
      | Some id' -> check_bool (Rules.to_string id) true (id = id')
      | None -> Alcotest.failf "%s does not round-trip" (Rules.to_string id))
    Rules.all

(* --- Syntactic rules ------------------------------------------------------- *)

let test_d1 () =
  rejects Rules.D1 "let x = Random.int 5";
  rejects Rules.D1 "let () = Random.self_init ()";
  rejects Rules.D1 "open Random";
  rejects Rules.D1 "let x = Stdlib.Random.bool ()";
  rejects ~ctx:bin_ctx Rules.D1 "let x = Random.int 5";
  accepts ~ctx:prng_ctx "let x = Random.int 5";
  accepts "let x = Ncg_prng.Rng.int rng 5";
  accepts "let random_walk = 3 (* mentions Random only in a comment *)"

let test_d2 () =
  rejects Rules.D2 "let t = Unix.gettimeofday ()";
  rejects Rules.D2 "let t = Unix.time ()";
  rejects Rules.D2 "let t = Sys.time ()";
  accepts ~ctx:obs_ctx "let t = Unix.gettimeofday ()";
  accepts "let pid = Unix.getpid ()";
  accepts "let t = Ncg_obs.Clock.now_ns ()"

let test_d3 () =
  rejects Rules.D3 "let () = Hashtbl.iter f t";
  rejects Rules.D3 "let x = Hashtbl.fold f t []";
  rejects Rules.D3 "let x = Stdlib.Hashtbl.fold f t []";
  (* The rule holds in every zone, including lib/obs and bin. *)
  rejects ~ctx:obs_ctx Rules.D3 "let () = Hashtbl.iter f t";
  rejects ~ctx:bin_ctx Rules.D3 "let () = Hashtbl.iter f t";
  accepts "let x = Hashtbl.find_opt t k";
  accepts "let () = List.iter f xs";
  accepts "let n = Hashtbl.length t"

let test_d4 () =
  rejects Rules.D4 "let s = string_of_float x";
  rejects Rules.D4 "let s = Float.to_string x";
  rejects Rules.D4 {|let () = Printf.printf "%f" x|};
  rejects Rules.D4 {|let s = Printf.sprintf "x=%f" x|};
  rejects Rules.D4 {|let () = Format.printf "%f" x|};
  accepts {|let s = Printf.sprintf "%.17g" x|};
  accepts {|let s = Printf.sprintf "%g" x|};
  accepts {|let s = Printf.sprintf "100%%fun"|};
  accepts {|let s = Printf.sprintf "%d" 3|};
  (* A bare %f outside a printf-family call is just a string. *)
  accepts {|let s = "%f"|}

let test_p1 () =
  rejects Rules.P1 "let count = ref 0";
  rejects Rules.P1 "let cache = Hashtbl.create 16";
  rejects Rules.P1 "let buf = Array.make 4 0";
  rejects Rules.P1 "let b = Buffer.create 64";
  rejects Rules.P1 "let q : int Queue.t = Queue.create ()";
  rejects Rules.P1 "module M = struct let inner = ref 0 end";
  (* The shape check sees through an initializer block (bitset.ml's
     pop16 table is exactly this shape). *)
  rejects Rules.P1
    "let table = let t = Bytes.create 16 in Bytes.fill t 0 16 'x'; t";
  accepts "let x = Atomic.make 0";
  accepts "let k = Domain.DLS.new_key (fun () -> ref 0)";
  accepts "let m = Mutex.create ()";
  accepts "let f () = ref 0 (* local state is fine *)";
  accepts "let xs = [ 1; 2; 3 ]";
  (* P1 is a library rule: executables are single-entry. *)
  accepts ~ctx:bin_ctx "let count = ref 0"

let test_a1 () =
  rejects Rules.A1 {|let oc = open_out "x.json"|};
  rejects Rules.A1 {|let oc = open_out_bin "x.bin"|};
  rejects Rules.A1 {|let oc = Out_channel.open_text "x.txt"|};
  rejects ~ctx:obs_ctx Rules.A1 {|let oc = open_out "x.json"|};
  accepts {|let ic = open_in "x.json"|};
  accepts {|let () = Ncg_obs.Atomic_file.write "x.md" body|}

let test_f1 () =
  rejects Rules.F1 {|let s = Inject.site "no.such.site"|};
  rejects Rules.F1 {|let s = Ncg_fault.Inject.site "no.such.site"|};
  (* Inside lib/fault, a bare [site] call is the registry itself. *)
  rejects ~ctx:fault_ctx Rules.F1 {|let s = site "no.such.site"|};
  accepts {|let s = Inject.site "sweep.cell"|};
  accepts ~ctx:fault_ctx {|let s = site "bfs.traverse"|};
  (* A bare [site] call outside lib/fault is some other function. *)
  accepts {|let s = site "no.such.site"|};
  (* Non-literal arguments cannot be checked syntactically. *)
  accepts {|let s = Inject.site name|}

let test_o1 () =
  rejects Rules.O1 {|let p = Ncg_obs.Probe.find "no.such.probe"|};
  rejects Rules.O1 {|let p = Probe.find "no.such.probe"|};
  rejects Rules.O1 {|let p = Probe.register "no.such.probe"|};
  accepts {|let p = Ncg_obs.Probe.find "dynamics.social_cost"|};
  accepts {|let p = Probe.register "solver.bb_cutoffs"|};
  (* A bare [find] is some other function (Hashtbl.find, List.find...). *)
  accepts {|let p = find "no.such.probe"|};
  accepts {|let x = Hashtbl.find table "no.such.probe"|};
  (* Non-literal arguments cannot be checked syntactically. *)
  accepts {|let p = Ncg_obs.Probe.find name|}

let test_l1 () =
  rejects Rules.L1 {|let x = (Hashtbl.fold [@lint.allow "D3"]) f t []|};
  rejects Rules.L1 {|let x = 1 [@@lint.allow "Z9" "unknown rule"]|};
  rejects Rules.L1 "let cache = Hashtbl.create 16 [@@lint.domain_local]";
  accepts
    {|let x = (Hashtbl.fold [@lint.allow "D3" "sorted before escaping"]) f t []|};
  accepts {|let cache = Hashtbl.create 16 [@@lint.domain_local "init only"]|}

(* --- The typed pass: parity on the idiomatic spelling ---------------------- *)

let test_typed_parity () =
  typed_rejects Rules.D3 "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl";
  typed_rejects Rules.D1 "let roll () = Random.int 6";
  typed_rejects ~with_unix:true Rules.D2 "let now () = Unix.gettimeofday ()";
  typed_rejects Rules.D4 "let show (x : float) = Float.to_string x";
  typed_rejects Rules.D4 {|let p (x : float) = Printf.printf "%f" x|};
  typed_rejects Rules.A1 {|let f p = Out_channel.open_text p|};
  typed_rejects Rules.P1 "let count = ref 0";
  typed_rejects Rules.P1
    "let table = let t = Bytes.create 16 in Bytes.fill t 0 16 'x'; t";
  typed_accepts "let f tbl = Hashtbl.find_opt tbl 0";
  typed_accepts ~ctx:prng_ctx "let roll () = Random.int 6";
  typed_accepts {|let s = Printf.sprintf "%.17g" 1.0|};
  (* Suppressions work identically on the typedtree. *)
  typed_accepts
    {|let f tbl = (Hashtbl.iter [@lint.allow "D3" "fixture"]) (fun _ _ -> ()) tbl|}

(* --- The smuggling matrix: syntactic provably misses, typed catches -------- *)

let smuggling_vectors =
  [
    ( "module alias",
      Rules.D3,
      "module H = Hashtbl\nlet f tbl = H.iter (fun _ _ -> ()) tbl",
      false );
    ( "include",
      Rules.D3,
      "module M = struct include Hashtbl end\n\
       let f tbl = M.iter (fun _ _ -> ()) tbl",
      false );
    ( "first-class value",
      Rules.D3,
      "module H = Hashtbl\nlet it = H.iter\nlet g tbl = it (fun _ _ -> ()) tbl",
      false );
    ( "functor argument",
      Rules.D3,
      "module F (T : module type of Hashtbl) = struct\n\
      \  let go tbl = T.iter (fun _ _ -> ()) tbl\n\
       end\n\
       module Use = F (Hashtbl)",
      false );
    ( "re-export (alias of alias)",
      Rules.D3,
      "module A = Hashtbl\n\
       module B = A\n\
       let f tbl = B.fold (fun _ _ n -> n) tbl 0",
      false );
    ("random alias", Rules.D1, "module R = Random\nlet roll () = R.int 6", false);
    ( "clock alias",
      Rules.D2,
      "module U = Unix\nlet now () = U.gettimeofday ()",
      true );
    ( "float-format alias",
      Rules.D4,
      "module Fl = Float\nlet show (x : float) = Fl.to_string x",
      false );
    ( "channel alias",
      Rules.A1,
      "module O = Out_channel\nlet f p = O.open_text p",
      false );
  ]

let test_smuggling_matrix () =
  List.iter
    (fun (label, rule, src, with_unix) ->
      check_bool (label ^ ": syntactic pass misses it") true
        (not (List.mem rule (rules_of src)));
      check_bool (label ^ ": typed pass catches it") true
        (List.mem rule (typed_rules_of ~with_unix src)))
    smuggling_vectors

(* --- S1: borrowed scratch views must not escape ---------------------------- *)

let test_s1 () =
  (* Returning the lender's buffer hands the caller a view that the next
     run will silently invalidate. *)
  typed_rejects ~with_ncg:true Rules.S1
    "let leak s = Ncg_graph.Bfs.dist_array s";
  (* Storing it in a ref. *)
  typed_rejects ~with_ncg:true Rules.S1
    "let stash s (r : int array ref) = r := Ncg_graph.Bfs.dist_array s";
  (* Packing it into a tuple. *)
  typed_rejects ~with_ncg:true Rules.S1
    "let pack s = (Ncg_graph.Bfs.visit_order s, 0)";
  (* Via a let-bound name (taint tracking). *)
  typed_rejects ~with_ncg:true Rules.S1
    "let bad s = let d = Ncg_graph.Bfs.dist_array s in Some d";
  (* A workspace pool field packed into a container escapes the run. *)
  typed_rejects ~with_ncg:true Rules.S1
    "let grab (w : Ncg.Workspace.t) = (w.Ncg.Workspace.bfs, 0)";
  (* Copying first is the documented idiom. *)
  typed_accepts ~with_ncg:true
    "let ok s = Array.copy (Ncg_graph.Bfs.dist_array s)";
  (* Reading an element in place is fine. *)
  typed_accepts ~with_ncg:true
    "let ok2 s v = (Ncg_graph.Bfs.dist_array s).(v)";
  (* Threading a pool through a call is in-run plumbing, not an escape. *)
  typed_accepts ~with_ncg:true
    "let ok3 (w : Ncg.Workspace.t) f = f w.Ncg.Workspace.bfs";
  (* The syntactic pass cannot see any of this. *)
  check_bool "S1 is typed-only" true
    (not
       (List.mem Rules.S1 (rules_of "let leak s = Ncg_graph.Bfs.dist_array s")))

(* --- P2: no cross-domain capture of unsynchronized mutable state ----------- *)

let test_p2 () =
  typed_rejects ~with_ncg:true Rules.P2
    "let bad xs =\n\
    \  let acc = ref 0 in\n\
    \  Ncg_util.Parallel.map (fun x -> acc := !acc + x; x) xs";
  typed_rejects ~with_ncg:true Rules.P2
    "let bad2 (a : int array) xs = Ncg_util.Parallel.map (fun i -> a.(i)) xs";
  typed_rejects Rules.P2 "let bad3 (r : int ref) = Domain.spawn (fun () -> r := 1)";
  (* Atomics are the sanctioned cross-domain channel. *)
  typed_accepts ~with_ncg:true
    "let ok xs =\n\
    \  let c = Atomic.make 0 in\n\
    \  Ncg_util.Parallel.map (fun x -> Atomic.incr c; x) xs";
  (* Capturing immutable data is what the fan-out is for. *)
  typed_accepts ~with_ncg:true
    "let ok2 k xs = Ncg_util.Parallel.map (fun x -> x + k) xs";
  (* A justified allow works at the fan-out site. *)
  typed_accepts ~with_ncg:true
    "let ok3 (a : int array) xs =\n\
    \  (Ncg_util.Parallel.map (fun i -> a.(i)) xs\n\
    \  [@lint.allow \"P2\" \"read-only in this fixture\"])";
  check_bool "P2 is typed-only" true
    (not
       (List.mem Rules.P2
          (rules_of
             "let bad3 (r : int ref) = Domain.spawn (fun () -> r := 1)")))

(* --- R1: schema literals live in the registry ------------------------------ *)

let test_r1 () =
  (* A schema-shaped literal that is not registered at all. *)
  typed_rejects Rules.R1 {|let tag = "ncg.rogue.thing/9"|};
  (* Registered, but spelled out instead of referencing the registry. *)
  typed_rejects Rules.R1 {|let tag = "ncg.test.alpha/1"|};
  (* Non-schema strings are untouched. *)
  typed_accepts {|let s = "not a schema at all"|};
  typed_accepts {|let s = "ncg"|};
  (* Inside the registry module itself the literals are the point. *)
  typed_accepts ~ctx:schema_ctx {|let tag = "ncg.test.alpha/1"|};
  (* An explicit allow (e.g. a deliberately-unknown tag in a test). *)
  typed_accepts
    {|let tag = ("ncg.rogue.thing/9" [@lint.allow "R1" "fixture: unknown tag"])|};
  check_bool "R1 is typed-only" true
    (not (List.mem Rules.R1 (rules_of {|let tag = "ncg.rogue.thing/9"|})))

(* --- Suppressions, positions, parse errors --------------------------------- *)

let test_suppressions () =
  (* An allow on the enclosing binding covers violations inside it. *)
  let src =
    {|let s = Printf.sprintf "%f" x [@@lint.allow "D4" "legacy format kept for diffability"]|}
  in
  check_bool "binding-scope allow" true (rules_of src = []);
  let r = Lint.check_source ~ctx:lib_ctx ~filename:"f.ml" src in
  check_int "recorded" 1 (List.length r.Lint.suppressions);
  let s = List.hd r.Lint.suppressions in
  check_string "rule" "D4" (Rules.to_string s.Lint.sup_rule);
  check_string "justification" "legacy format kept for diffability"
    s.Lint.sup_justification;
  check_int "absorbed one violation" 1 s.Lint.sup_matched;
  (* The suppression is scoped: a second violation outside it still fires. *)
  let src2 =
    src ^ "\n\nlet t = Unix.gettimeofday ()\nlet u = string_of_float 1.0"
  in
  check_bool "scoped" true (rules_of src2 = [ Rules.D2; Rules.D4 ]);
  (* A floating [@@@lint.allow] covers the whole file. *)
  let src3 =
    {|[@@@lint.allow "D2" "fixture: timing scratch file"]
let t = Unix.gettimeofday ()
let u = Sys.time ()|}
  in
  check_bool "file-wide" true (rules_of src3 = []);
  let r3 = Lint.check_source ~ctx:lib_ctx ~filename:"f.ml" src3 in
  check_int "file-wide absorbed both" 2
    (List.fold_left
       (fun n (s : Lint.suppression) -> n + s.Lint.sup_matched)
       0 r3.Lint.suppressions);
  (* One allow can name several rules before the justification. *)
  let src4 =
    {|let f () =
  (Hashtbl.iter [@lint.allow "D3" "D1" "fixture: both rules at once"])
    (fun _ () -> ignore (Random.int 2))
    t|}
  in
  check_bool "multi-rule allow" true
    (match rules_of src4 with [] -> true | [ Rules.D1 ] -> true | _ -> false)

let test_parse_error () =
  let r = Lint.check_source ~ctx:lib_ctx ~filename:"broken.ml" "let let = in" in
  check_bool "parse error recorded" true (r.Lint.parse_error <> None);
  check_int "no violations" 0 (List.length r.Lint.violations);
  check_bool "not clean" false
    (Report.clean (Report.merge ~root:"." ~syntactic:[ r ] ()));
  (* A file that parses but does not type is a typed-pass error. *)
  let t =
    typed_report ~filename:"broken2.ml" "let x = no_such_identifier 42"
  in
  check_bool "typing error recorded" true (t.Lint.parse_error <> None)

let test_positions () =
  let r =
    Lint.check_source ~ctx:lib_ctx ~filename:"pos.ml"
      "let a = 1\nlet t = Unix.gettimeofday ()\n"
  in
  match r.Lint.violations with
  | [ v ] ->
      check_string "file" "pos.ml" v.Lint.file;
      check_int "line" 2 v.Lint.line;
      check_int "col" 8 v.Lint.col
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

(* --- Merge semantics: provenance and L2 staleness -------------------------- *)

let test_merge_provenance () =
  let file = "lib/core/fix.ml" in
  let src = "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl" in
  let s = Lint.check_source ~ctx:lib_ctx ~filename:file src in
  let t = typed_report ~filename:file src in
  let m = Report.merge ~root:"." ~syntactic:[ s ] ~typed:[ t ] () in
  check_bool "passes" true (m.Report.m_passes = [ "syntactic"; "typed" ]);
  match m.Report.m_violations with
  | [ v ] ->
      check_string "rule" "D3" (Rules.to_string v.Report.mv_rule);
      check_bool "found by both passes" true
        (v.Report.mv_passes = [ "syntactic"; "typed" ])
  | vs -> Alcotest.failf "expected 1 merged violation, got %d" (List.length vs)

let test_stale_suppression () =
  let file = "lib/core/fix.ml" in
  (* The excused code is gone: nothing left for the allow to absorb. *)
  let src = {|let x = 1 [@@lint.allow "D3" "nothing to excuse anymore"]|} in
  let s = Lint.check_source ~ctx:lib_ctx ~filename:file src in
  let t = typed_report ~filename:file src in
  let m = Report.merge ~root:"." ~syntactic:[ s ] ~typed:[ t ] () in
  check_int "judged stale" 1 (List.length (Report.stale_suppressions m));
  check_bool "synthesized as L2" true
    (List.exists
       (fun v -> v.Report.mv_rule = Rules.L2 && v.Report.mv_passes = [ "merge" ])
       m.Report.m_violations);
  check_bool "stale report is not clean" false (Report.clean m);
  (* Without the typed pass L2 is never judged: the syntactic pass does
     not check the full catalogue, so absence proves nothing. *)
  let m1 = Report.merge ~root:"." ~syntactic:[ s ] () in
  check_int "single-pass: not judged" 0
    (List.length (Report.stale_suppressions m1));
  check_bool "single-pass report is clean" true (Report.clean m1);
  (* A live suppression is not stale, and its per-pass absorption counts
     are folded together. *)
  let live =
    {|let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl [@@lint.allow "D3" "fixture"]|}
  in
  let s2 = Lint.check_source ~ctx:lib_ctx ~filename:file live in
  let t2 = typed_report ~filename:file live in
  let m2 = Report.merge ~root:"." ~syntactic:[ s2 ] ~typed:[ t2 ] () in
  check_int "live: no stale" 0 (List.length (Report.stale_suppressions m2));
  check_bool "live report clean" true (Report.clean m2);
  (match m2.Report.m_suppressions with
  | [ sup ] ->
      check_bool "matched in both passes" true
        (sup.Report.ms_matched = [ ("syntactic", 1); ("typed", 1) ])
  | sups -> Alcotest.failf "expected 1 suppression, got %d" (List.length sups));
  (* A file the typed pass could not check is never judged: absence of
     evidence from a broken build is not staleness. *)
  let half = {|let x = no_such_identifier 42 [@@lint.allow "D3" "pending"]|} in
  let s3 = Lint.check_source ~ctx:lib_ctx ~filename:file half in
  let t3 = typed_report ~filename:file half in
  check_bool "typed pass errored" true (t3.Lint.parse_error <> None);
  let m3 = Report.merge ~root:"." ~syntactic:[ s3 ] ~typed:[ t3 ] () in
  check_int "erroring file: not judged" 0
    (List.length (Report.stale_suppressions m3))

(* --- JSON report ----------------------------------------------------------- *)

let fixture_merged () =
  let syntactic =
    [
      Lint.check_source ~ctx:lib_ctx ~filename:"lib/core/a.ml"
        "let t = Unix.gettimeofday ()\n";
      Lint.check_source ~ctx:lib_ctx ~filename:"lib/core/b.ml"
        {|let cache = Hashtbl.create 16 [@@lint.domain_local "init-time only"]|};
      Lint.check_source ~ctx:lib_ctx ~filename:"lib/core/broken.ml" "let let";
    ]
  in
  Report.merge ~root:"." ~syntactic ()

let test_report_counts () =
  let m = fixture_merged () in
  check_int "files" 3 m.Report.m_files_checked;
  check_int "violations" 1 (List.length m.Report.m_violations);
  check_int "suppressions" 1 (List.length m.Report.m_suppressions);
  check_int "parse errors" 1 (List.length m.Report.m_parse_errors);
  check_bool "not clean" false (Report.clean m);
  check_bool "human output mentions rule" true
    (let human = Report.to_human m in
     let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains human "[D2]" && contains human "PARSE ERROR"
     && contains human "(syntactic)")

(* Golden snapshot of the machine-readable document: the schema is a
   published artifact (CI uploads it), so its exact shape is pinned. *)
let test_report_golden () =
  let syntactic =
    [
      Lint.check_source ~ctx:lib_ctx ~filename:"lib/core/a.ml"
        "let t = Unix.gettimeofday ()\n";
    ]
  in
  let doc = Report.to_json (Report.merge ~root:"." ~syntactic ()) in
  (* Structure: every top-level field present, in order. *)
  (match doc with
  | Json.Obj fields ->
      check_bool "field order" true
        (List.map fst fields
        = [
            "schema";
            "root";
            "passes";
            "files_checked";
            "violation_count";
            "suppression_count";
            "stale_count";
            "parse_error_count";
            "rules";
            "violations";
            "suppressions";
            "stale_suppressions";
            "parse_errors";
          ]);
      check_bool "schema tag" true
        (List.assoc "schema" fields
        = Json.String
            ("ncg.lint.report/2"
            [@lint.allow "R1" "the golden test pins the published spelling"]))
  | _ -> Alcotest.fail "report is not an object");
  (* Byte-exact golden for the violation entry. *)
  let violations =
    match doc with
    | Json.Obj fields -> List.assoc "violations" fields
    | _ -> assert false
  in
  check_string "violation json"
    ("[{\"file\":\"lib/core/a.ml\",\"line\":1,\"col\":8,\"rule\":\"D2\","
   ^ "\"title\":\"wall-clock read outside lib/obs\","
   ^ "\"message\":\"Unix.gettimeofday: wall-clock read outside the Clock \
      module\","
   ^ "\"hint\":\"use Ncg_obs.Clock.now_ns / Clock.elapsed_ns\","
   ^ "\"passes\":[\"syntactic\"]}]")
    (Json.to_string violations);
  (* The whole document round-trips through the in-house parser. *)
  match Json.of_string (Json.to_string doc) with
  | Ok v -> check_bool "round-trip" true (v = doc)
  | Error e -> Alcotest.failf "report does not reparse: %s" e

(* --- The live codebase lints clean under both passes ------------------------ *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_live_tree_clean () =
  let root = Lazy.force root in
  let files =
    Lint.ml_files_under ~root ~dirs:[ "lib"; "bin"; "bench"; "test"; "examples" ]
  in
  (* The enlarged scan (test/ and examples/ included) must actually pick
     the extra trees up, not silently fall back to the library dirs. *)
  check_bool "found the tree" true (List.length files > 80);
  check_bool "scan includes test/" true
    (List.exists (starts_with "test/") files);
  check_bool "scan includes examples/" true
    (List.exists (starts_with "examples/") files);
  let known_sites = Ncg_fault.Inject.sites () in
  let known_probes = Ncg_obs.Probe.names () in
  let known_schemas = Ncg_obs.Schema.all in
  let ctx_of rel =
    Lint.ctx_for_path ~known_sites ~known_probes ~known_schemas rel
  in
  let syntactic =
    List.map
      (fun rel ->
        Lint.check_file ~ctx:(ctx_of rel) ~display:rel
          (Filename.concat root rel))
      files
  in
  let cmt_root =
    let cand = Filename.concat root "_build/default" in
    if Sys.file_exists cand then cand else root
  in
  let typed = Typed.check_tree ~ctx_of ~root ~cmt_root files in
  (* Dune refreshes a .cmt only when the bytecode compilation rule runs,
     so after an incremental native build some cmts may be missing or
     digest-stale; those files are skipped here and only the CI gate —
     which runs ncg_lint --typed after a full `dune build @check` — is
     strict about them. Violations, stale suppressions and unreadable
     cmts fail either way. *)
  let covered =
    List.filter (fun (r : Lint.file_report) -> r.Lint.parse_error = None) typed
  in
  check_bool "typed pass covered the bulk of the tree" true
    (List.length covered >= 40);
  let m = Report.merge ~root ~syntactic ~typed () in
  let tolerable = function
    | _, _, msg ->
        starts_with "no .cmt found" msg || starts_with "stale .cmt" msg
  in
  let hard_errors =
    List.filter (fun e -> not (tolerable e)) m.Report.m_parse_errors
  in
  if m.Report.m_violations <> [] || hard_errors <> [] then
    Alcotest.failf "the tree does not lint clean under both passes:\n%s"
      (Report.to_human
         { m with Report.m_parse_errors = hard_errors });
  check_int "no stale suppressions" 0
    (List.length (Report.stale_suppressions m))

let () =
  Alcotest.run "ncg_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "zones" `Quick test_zones;
          Alcotest.test_case "catalogue round-trip" `Quick test_rule_catalogue;
          Alcotest.test_case "D1 randomness" `Quick test_d1;
          Alcotest.test_case "D2 wall clock" `Quick test_d2;
          Alcotest.test_case "D3 hash iteration" `Quick test_d3;
          Alcotest.test_case "D4 float formatting" `Quick test_d4;
          Alcotest.test_case "P1 global state" `Quick test_p1;
          Alcotest.test_case "A1 bare open_out" `Quick test_a1;
          Alcotest.test_case "F1 fault sites" `Quick test_f1;
          Alcotest.test_case "O1 probe names" `Quick test_o1;
          Alcotest.test_case "L1 malformed annotations" `Quick test_l1;
        ] );
      ( "typed",
        [
          Alcotest.test_case "parity on idiomatic spellings" `Quick
            test_typed_parity;
          Alcotest.test_case "smuggling matrix" `Quick test_smuggling_matrix;
          Alcotest.test_case "S1 scratch escape" `Quick test_s1;
          Alcotest.test_case "P2 cross-domain capture" `Quick test_p2;
          Alcotest.test_case "R1 schema literals" `Quick test_r1;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "allow scoping" `Quick test_suppressions;
          Alcotest.test_case "parse errors" `Quick test_parse_error;
          Alcotest.test_case "positions" `Quick test_positions;
        ] );
      ( "report",
        [
          Alcotest.test_case "counts + human" `Quick test_report_counts;
          Alcotest.test_case "golden json" `Quick test_report_golden;
          Alcotest.test_case "merge provenance" `Quick test_merge_provenance;
          Alcotest.test_case "L2 staleness" `Quick test_stale_suppression;
        ] );
      ( "live",
        [
          Alcotest.test_case "codebase lints clean" `Quick test_live_tree_clean;
        ] );
    ]
