(* Tests for the crash-safe result store: CRC-32, record framing and
   torn-tail recovery, content-addressed cache keys, supersede +
   compaction, and resuming an interrupted sweep from the store. *)

module Crc32 = Ncg_store.Crc32
module Record_log = Ncg_store.Record_log
module Cache_key = Ncg_store.Cache_key
module Store = Ncg_store.Store
module Experiment = Ncg.Experiment
module Dynamics = Ncg.Dynamics
module Json = Ncg_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_temp_dir f =
  let dir = Filename.temp_file "ncg_store_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  (Out_channel.with_open_bin
  [@lint.allow "A1" "deliberately non-atomic: crafts torn/corrupt store fixtures"])
    path
    (fun oc -> Out_channel.output_string oc s)

(* --- Crc32 ---------------------------------------------------------------- *)

let test_crc32_vectors () =
  (* The standard check value for the IEEE/zlib polynomial. *)
  check_int "123456789" 0xCBF43926 (Crc32.digest "123456789");
  check_int "empty" 0 (Crc32.digest "");
  check_int "single NUL" (Crc32.digest "\x00") (Crc32.digest_sub "a\x00b" ~pos:1 ~len:1);
  check_bool "order matters" true (Crc32.digest "ab" <> Crc32.digest "ba")

let test_crc32_incremental () =
  let whole = "the quick brown fox jumps over the lazy dog" in
  let split i =
    let a = String.sub whole 0 i and b = String.sub whole i (String.length whole - i) in
    Crc32.finalize (Crc32.update (Crc32.update Crc32.empty a) b)
  in
  for i = 0 to String.length whole do
    check_int (Printf.sprintf "split at %d" i) (Crc32.digest whole) (split i)
  done;
  check_int "digest_sub = digest of sub"
    (Crc32.digest (String.sub whole 4 9))
    (Crc32.digest_sub whole ~pos:4 ~len:9)

(* --- Record_log ----------------------------------------------------------- *)

let payloads =
  [ "alpha"; ""; "binary \x00\x01\xff payload"; String.make 3000 'x'; "tail" ]

let open_collecting ?sync path =
  let seen = ref [] in
  let log, recovery = Record_log.openfile ?sync path ~replay:(fun p -> seen := p :: !seen) in
  (log, recovery, List.rev !seen)

let test_log_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "log" in
      let log, recovery, seen = open_collecting path in
      check_int "fresh: nothing replayed" 0 recovery.Record_log.replayed;
      check_int "fresh: nothing dropped" 0 recovery.Record_log.dropped_bytes;
      check_int "fresh: no records" 0 (List.length seen);
      List.iter (Record_log.append log) payloads;
      let size = Record_log.size log in
      check_int "size = header + frames" size
        (8 + List.fold_left (fun acc p -> acc + 8 + String.length p) 0 payloads);
      Record_log.close log;
      let log, recovery, seen = open_collecting path in
      check_int "replayed all" (List.length payloads) recovery.Record_log.replayed;
      check_int "dropped nothing" 0 recovery.Record_log.dropped_bytes;
      check_bool "contents and order preserved" true (seen = payloads);
      check_int "size preserved" size (Record_log.size log);
      Record_log.close log)

let test_log_torn_tail_all_offsets () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "log" in
      let log, _, _ = open_collecting path in
      List.iter (Record_log.append log) payloads;
      Record_log.close log;
      let full = read_file path in
      (* End offset of each complete record, in order. *)
      let ends =
        List.rev
          (List.fold_left
             (fun acc p ->
               let prev = match acc with [] -> 8 | e :: _ -> e in
               (prev + 8 + String.length p) :: acc)
             [] payloads)
      in
      let torn = Filename.concat dir "torn" in
      for offset = 0 to String.length full do
        write_file torn (String.sub full 0 offset);
        let log, recovery, seen = open_collecting torn in
        let expected = List.filter (fun e -> e <= offset) ends in
        check_int
          (Printf.sprintf "offset %d: longest valid prefix" offset)
          (List.length expected) recovery.Record_log.replayed;
        check_bool
          (Printf.sprintf "offset %d: recovered contents" offset)
          true
          (seen = List.filteri (fun i _ -> i < List.length expected) payloads);
        (* A torn magic (offset < 8) is reset wholesale: every byte drops. *)
        let good_end =
          if offset < 8 then 0
          else match List.rev expected with e :: _ -> e | [] -> 8
        in
        check_int
          (Printf.sprintf "offset %d: dropped tail" offset)
          (offset - good_end) recovery.Record_log.dropped_bytes;
        (* The repaired log accepts appends and replays them next open. *)
        Record_log.append log "after recovery";
        Record_log.close log;
        let log, recovery, seen = open_collecting torn in
        check_int
          (Printf.sprintf "offset %d: reopen after repair+append" offset)
          (List.length expected + 1)
          recovery.Record_log.replayed;
        check_bool
          (Printf.sprintf "offset %d: appended record last" offset)
          true
          (List.nth seen (List.length seen - 1) = "after recovery");
        Record_log.close log
      done)

let test_log_corrupt_byte () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "log" in
      let log, _, _ = open_collecting path in
      List.iter (Record_log.append log) [ "first"; "second"; "third" ];
      Record_log.close log;
      let full = read_file path in
      (* Flip one byte inside "second"'s payload: recovery keeps "first",
         drops everything from the corrupt record on. *)
      let corrupt_at = 8 + 8 + 5 + 8 + 2 in
      let b = Bytes.of_string full in
      Bytes.set b corrupt_at (Char.chr (Char.code (Bytes.get b corrupt_at) lxor 0xFF));
      write_file path (Bytes.to_string b);
      let log, recovery, seen = open_collecting path in
      check_int "only the prefix survives" 1 recovery.Record_log.replayed;
      check_bool "prefix content" true (seen = [ "first" ]);
      check_bool "corrupt tail truncated" true (recovery.Record_log.dropped_bytes > 0);
      Record_log.close log)

let test_log_rejects_foreign_file () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "not_a_log" in
      write_file path "GARBAGE FILE, definitely not a record log";
      (match Record_log.openfile path ~replay:(fun _ -> ()) with
      | exception Sys_error _ -> ()
      | log, _ ->
          Record_log.close log;
          Alcotest.fail "opened a non-log file");
      check_bool "file untouched" true
        (read_file path = "GARBAGE FILE, definitely not a record log"))

(* --- Cache_key ------------------------------------------------------------ *)

let test_cache_key () =
  let k = Cache_key.make [ ("class", Json.String "tree"); ("n", Json.Int 12) ] in
  check_string "canonical form"
    (Printf.sprintf "{\"store_schema\":%d,\"class\":\"tree\",\"n\":12}"
       Cache_key.schema_version)
    (Cache_key.to_string k);
  let k' = Cache_key.make [ ("class", Json.String "tree"); ("n", Json.Int 12) ] in
  check_bool "equal" true (Cache_key.equal k k');
  check_int "compare" 0 (Cache_key.compare k k');
  let other = Cache_key.make [ ("class", Json.String "tree"); ("n", Json.Int 13) ] in
  check_bool "field change changes key" false (Cache_key.equal k other);
  check_bool "field change changes fingerprint" true
    (Cache_key.fingerprint k <> Cache_key.fingerprint other);
  let hex = Cache_key.fingerprint_hex k in
  check_int "hex fingerprint: 16 digits" 16 (String.length hex);
  check_bool "hex fingerprint: lowercase hex" true
    (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) hex);
  check_string "hex matches fingerprint"
    (Printf.sprintf "%016Lx" (Cache_key.fingerprint k))
    hex

(* --- Store ---------------------------------------------------------------- *)

let key i = Cache_key.make [ ("cell", Json.Int i) ]

let test_store_basic () =
  with_temp_dir (fun dir ->
      Store.with_dir dir (fun s ->
          check_bool "miss before insert" true (Store.lookup s (key 1) = None);
          check_bool "mem false" false (Store.mem s (key 1));
          Store.insert s (key 1) "one";
          Store.insert s (key 2) "two";
          check_bool "hit" true (Store.lookup s (key 1) = Some "one");
          check_bool "mem true" true (Store.mem s (key 1));
          check_int "live" 2 (Store.live_count s);
          (* Re-insert supersedes: last write wins. *)
          Store.insert s (key 1) "one v2";
          check_bool "latest wins" true (Store.lookup s (key 1) = Some "one v2");
          check_int "still 2 live" 2 (Store.live_count s);
          let st = Store.stats s in
          check_int "hits" 2 st.Store.hits;
          check_int "misses" 1 st.Store.misses;
          check_int "inserts" 3 st.Store.inserts;
          check_int "superseded" 1 st.Store.superseded);
      (* Everything survives a reopen, including last-write-wins. *)
      Store.with_dir dir (fun s ->
          let st = Store.stats s in
          check_int "replayed all records" 3 st.Store.replayed;
          check_int "superseded recomputed" 1 st.Store.superseded;
          check_int "live after reopen" 2 (Store.live_count s);
          check_bool "latest wins after reopen" true
            (Store.lookup s (key 1) = Some "one v2");
          check_bool "other key intact" true (Store.lookup s (key 2) = Some "two"));
      check_bool "manifest written" true
        (Sys.file_exists (Filename.concat dir "MANIFEST.json"));
      match Json.of_string (read_file (Filename.concat dir "MANIFEST.json")) with
      | Error e -> Alcotest.fail ("manifest not valid JSON: " ^ e)
      | Ok (Json.Obj fields) ->
          check_bool "manifest live count" true
            (List.assoc_opt "live" fields = Some (Json.Int 2))
      | Ok _ -> Alcotest.fail "manifest not an object")

let test_store_compaction () =
  with_temp_dir (fun dir ->
      Store.with_dir dir (fun s ->
          Store.insert s (key 1) "a";
          Store.insert s (key 1) "b";
          Store.insert s (key 1) "c";
          Store.insert s (key 2) "z";
          let before = Store.log_size s in
          Store.compact s;
          let after = Store.log_size s in
          check_bool "log shrank" true (after < before);
          check_bool "latest survives" true (Store.lookup s (key 1) = Some "c");
          check_bool "other key survives" true (Store.lookup s (key 2) = Some "z");
          check_int "nothing superseded now" 0 (Store.stats s).Store.superseded;
          check_int "compactions counted" 1 (Store.stats s).Store.compactions;
          (* No superseded records: compacting again is a no-op. *)
          Store.compact s;
          check_int "no-op compaction not counted" 1 (Store.stats s).Store.compactions;
          check_int "no-op keeps size" after (Store.log_size s));
      Store.with_dir dir (fun s ->
          let st = Store.stats s in
          check_int "replays only live records" 2 st.Store.replayed;
          check_int "compactions persisted" 1 st.Store.compactions;
          check_bool "latest still wins" true (Store.lookup s (key 1) = Some "c")))

let test_store_truncated_log_recovers () =
  with_temp_dir (fun dir ->
      Store.with_dir dir (fun s ->
          for i = 1 to 5 do
            Store.insert s (key i) (Printf.sprintf "payload %d" i)
          done);
      let log_path = Filename.concat dir "records.log" in
      let full = read_file log_path in
      (* Chop mid-way through the last record: the first four survive. *)
      write_file log_path (String.sub full 0 (String.length full - 3));
      Store.with_dir dir (fun s ->
          let st = Store.stats s in
          check_int "four records recovered" 4 st.Store.replayed;
          check_bool "torn bytes dropped" true (st.Store.dropped_bytes > 0);
          for i = 1 to 4 do
            check_bool
              (Printf.sprintf "key %d intact" i)
              true
              (Store.lookup s (key i) = Some (Printf.sprintf "payload %d" i))
          done;
          check_bool "torn record gone" true (Store.lookup s (key 5) = None);
          (* The store keeps working: the lost cell can be re-inserted. *)
          Store.insert s (key 5) "payload 5 again");
      Store.with_dir dir (fun s ->
          check_bool "re-inserted record persisted" true
            (Store.lookup s (key 5) = Some "payload 5 again")))

(* --- Sweep integration: cache round-trip and crash resume ----------------- *)

let fixture_cells = Experiment.grid ~alphas:[ 0.5; 2.0 ] ~ks:[ 2; 1000 ]

let sweep_fixture ?store ~domains () =
  Experiment.sweep ~domains ?store
    ~store_context:[ ("fixture", Json.String "test_store") ]
    ~make_initial:(fun ~seed -> Experiment.initial_tree ~seed ~n:10)
    ~make_config:(fun (c : Experiment.cell) ->
      {
        (Dynamics.default_config ~alpha:c.Experiment.alpha ~k:c.Experiment.k) with
        Dynamics.collect_features = false;
      })
    ~cells:fixture_cells ~trials:2 ~seed:2014 ()

(* The deterministic projection of a cell result — what must be identical
   between a fresh and a resumed sweep for any domain count (timing
   fields are excluded, as in the engine's own determinism contract). *)
let check_same_cells what a b =
  check_int (what ^ ": same length") (List.length a) (List.length b);
  List.iter2
    (fun (x : Experiment.cell_result) (y : Experiment.cell_result) ->
      let tag fmt =
        Printf.sprintf "%s: cell (%g,%d) %s" what x.Experiment.cell.Experiment.alpha
          x.Experiment.cell.Experiment.k fmt
      in
      check_bool (tag "cell") true (x.Experiment.cell = y.Experiment.cell);
      (* compare, not (=): run_stats can hold NaN (e.g. unfairness). *)
      check_bool (tag "runs") true (compare x.Experiment.runs y.Experiment.runs = 0);
      check_bool (tag "counters") true (x.Experiment.counters = y.Experiment.counters);
      check_bool (tag "histogram counts") true
        (Ncg_obs.Histogram.counts_only x.Experiment.histograms
        = Ncg_obs.Histogram.counts_only y.Experiment.histograms);
      check_bool (tag "gc allocated words") true
        (Ncg_obs.Gc_stats.allocated_words x.Experiment.gc
        = Ncg_obs.Gc_stats.allocated_words y.Experiment.gc))
    a b

let test_cell_result_codec_roundtrip () =
  let results = sweep_fixture ~domains:1 () in
  List.iter
    (fun (r : Experiment.cell_result) ->
      match Experiment.cell_result_of_json (Experiment.cell_result_to_json r) with
      | Error e -> Alcotest.fail ("codec round-trip failed: " ^ e)
      | Ok r' ->
          (* Lossless: every field restores, including timing telemetry. *)
          check_bool "bit-identical round-trip" true (compare r r' = 0))
    results;
  (* The JSON text itself round-trips through the parser. *)
  let r = List.hd results in
  let text = Json.to_string (Experiment.cell_result_to_json r) in
  (match Json.of_string text with
  | Ok j -> check_bool "parsed back equal" true (Ok j = Ok (Experiment.cell_result_to_json r))
  | Error e -> Alcotest.fail ("serialized cell unparseable: " ^ e));
  (* Schema drift reads as an error, not a wrong result. *)
  match Experiment.cell_result_of_json (Json.Obj [ ("schema", Json.String "bogus/9") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a foreign schema"

let test_sweep_store_roundtrip () =
  let reference = sweep_fixture ~domains:1 () in
  with_temp_dir (fun dir ->
      let populated =
        Store.with_dir dir (fun store ->
            let r = sweep_fixture ~store ~domains:2 () in
            let st = Store.stats store in
            check_int "first pass: all misses" (List.length fixture_cells)
              st.Store.misses;
            check_int "first pass: all inserted" (List.length fixture_cells)
              st.Store.inserts;
            r)
      in
      check_same_cells "populate vs plain" reference populated;
      let cached =
        Store.with_dir dir (fun store ->
            let r = sweep_fixture ~store ~domains:1 () in
            let st = Store.stats store in
            check_int "second pass: all hits" (List.length fixture_cells) st.Store.hits;
            check_int "second pass: no misses" 0 st.Store.misses;
            r)
      in
      (* A cache hit restores the stored cell exactly — wall times, span
         tree, domain id and all (compare: NaN-tolerant). *)
      check_bool "cached pass restores populate results verbatim" true
        (compare populated cached = 0))

let test_sweep_resume_after_kill () =
  let reference = sweep_fixture ~domains:1 () in
  with_temp_dir (fun dir ->
      ignore (Store.with_dir dir (fun store -> sweep_fixture ~store ~domains:1 ()));
      let log_path = Filename.concat dir "records.log" in
      let full = read_file log_path in
      (* Simulate SIGKILL mid-append at several arbitrary byte offsets:
         keep a prefix of the log, resume, and require results identical
         to the uninterrupted sweep for any domain count. *)
      let offsets =
        [ 8; (String.length full / 3) + 1; String.length full - 1 ]
      in
      List.iter
        (fun offset ->
          List.iter
            (fun domains ->
              write_file log_path (String.sub full 0 offset);
              let resumed, hits, misses =
                Store.with_dir dir (fun store ->
                    let r = sweep_fixture ~store ~domains () in
                    let st = Store.stats store in
                    (r, st.Store.hits, st.Store.misses))
              in
              let tag fmt =
                Printf.sprintf "offset %d, %d domains: %s" offset domains fmt
              in
              check_same_cells (tag "resume = uninterrupted") reference resumed;
              check_int (tag "every cell hit or recomputed")
                (List.length fixture_cells) (hits + misses);
              check_bool (tag "truncation lost at least one cell") true (misses >= 1);
              (* Restore the full log for the next offset/domain combo. *)
              write_file log_path full)
            [ 1; 2 ])
        offsets)

(* --- Fault-injected short writes and healing ------------------------------ *)

module Inject = Ncg_fault.Inject

(* Run [f] with [spec] installed and armed in this domain; always leave
   the process disarmed and plan-free. *)
let with_fault_plan spec f =
  (match Inject.parse_plan ~seed:42 spec with
  | Ok plan -> Inject.install plan
  | Error e -> Alcotest.fail e);
  Inject.arm ~scope:0;
  Fun.protect
    ~finally:(fun () ->
      Inject.clear ();
      Inject.disarm ())
    f

(* A short write injected into the [i]-th of [n] appends must poison the
   handle, leave a genuinely torn frame on disk, and cost exactly that
   one record on reopen — for every victim index and any cut length. *)
let prop_log_short_write_recovers =
  QCheck.Test.make ~name:"short write loses exactly the torn record" ~count:100
    QCheck.(
      triple (int_range 1 8) (int_range 0 7)
        (small_list (string_gen Gen.(map Char.chr (int_range 0 255)))))
    (fun (n, victim_ix, extra) ->
      let victim_ix = victim_ix mod n in
      let payloads =
        List.init n (fun i -> Printf.sprintf "record-%d-%s" i (String.make i 'x'))
        @ extra
      in
      let payloads = List.filteri (fun i _ -> i < n) payloads in
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "log" in
          let log, _, _ = open_collecting path in
          let spec = Printf.sprintf "record_log.append=short:3@nth:%d" (victim_ix + 1) in
          let survivors = ref [] in
          let faulted = ref false in
          with_fault_plan spec (fun () ->
              List.iteri
                (fun i p ->
                  if not !faulted then
                    match Record_log.append log p with
                    | () -> survivors := p :: !survivors
                    | exception Inject.Fault { site; _ } ->
                        faulted := true;
                        check_string "site" "record_log.append" site;
                        check_int "victim" victim_ix i;
                        check_bool "poisoned" true (Record_log.poisoned log);
                        (* Poisoned handles refuse further appends. *)
                        (match Record_log.append log "after" with
                        | () -> Alcotest.fail "append on poisoned handle"
                        | exception Invalid_argument _ -> ()))
                payloads);
          Record_log.close log;
          (* Reopen: the torn frame is truncated, every append that
             returned cleanly is replayed, and the handle works again. *)
          let log, recovery, seen = open_collecting path in
          check_int "replayed" victim_ix recovery.Record_log.replayed;
          check_bool "torn bytes dropped" true (recovery.Record_log.dropped_bytes > 0);
          check_bool "survivors replayed" true (seen = List.rev !survivors);
          Record_log.append log "fresh";
          Record_log.close log;
          let _, recovery, seen = open_collecting path in
          check_int "fresh append recovered" (victim_ix + 1)
            recovery.Record_log.replayed;
          check_bool "tail is the fresh record" true
            (List.nth seen victim_ix = "fresh");
          true))

let test_store_heals_after_failed_insert () =
  with_temp_dir (fun dir ->
      let key tag = Cache_key.make [ ("t", Json.String tag) ] in
      Store.with_dir dir (fun store ->
          (* Insert a (clean), b (short write), c (clean): the store heals
             in place, so only b is lost. *)
          with_fault_plan "record_log.append=short:6@nth:2" (fun () ->
              Store.insert store (key "a") "payload-a";
              (match Store.insert store (key "b") "payload-b" with
              | () -> Alcotest.fail "insert should fail"
              | exception Inject.Fault _ -> ());
              Store.insert store (key "c") "payload-c");
          check_bool "a" true (Store.lookup store (key "a") = Some "payload-a");
          check_bool "b lost" true (Store.lookup store (key "b") = None);
          check_bool "c" true (Store.lookup store (key "c") = Some "payload-c");
          check_int "healed once" 1 (Store.stats store).Store.heals);
      (* The on-disk log holds exactly the records whose insert returned. *)
      Store.with_dir dir (fun store ->
          check_int "replayed" 2 (Store.stats store).Store.replayed;
          check_bool "a persisted" true
            (Store.lookup store (key "a") = Some "payload-a");
          check_bool "c persisted" true
            (Store.lookup store (key "c") = Some "payload-c")))

(* --- Advisory store lock -------------------------------------------------- *)

let test_store_lock_excludes_second_open () =
  with_temp_dir (fun dir ->
      let store = Store.open_dir dir in
      Fun.protect
        ~finally:(fun () -> Store.close store)
        (fun () ->
          match Store.open_dir dir with
          | _ -> Alcotest.fail "second open should raise Locked"
          | exception Store.Locked { pid; _ } ->
              check_int "holder is this process" (Unix.getpid ()) pid);
      (* close released the lock: reopening works. *)
      Store.with_dir dir (fun _ -> ()))

let test_store_lock_stale_is_swept () =
  with_temp_dir (fun dir ->
      (* A lock held by a dead process (a reaped child) is stale and must
         be swept; garbage contents count as stale too. *)
      let dead_pid =
        match Unix.fork () with
        | 0 -> Unix._exit 0
        | pid ->
            ignore (Unix.waitpid [] pid);
            pid
      in
      List.iter
        (fun contents ->
          write_file (Filename.concat dir "LOCK") contents;
          Store.with_dir dir (fun _ -> ()))
        [ Printf.sprintf "%d\n" dead_pid; "not a pid\n"; "" ])

let test_store_lock_takeover_race () =
  with_temp_dir (fun dir ->
      (* N processes race Store.open_dir against the same stale lock.
         The rename(2)-claim takeover must elect exactly one winner; the
         rest report Locked (never a second acquisition, never a crash).
         The winner holds its lock until every contender has decided, so
         no loser can retry against a released lock. *)
      let n = 6 in
      let dead_pid =
        match Unix.fork () with
        | 0 -> Unix._exit 0
        | pid ->
            ignore (Unix.waitpid [] pid);
            pid
      in
      write_file (Filename.concat dir "LOCK") (Printf.sprintf "%d\n" dead_pid);
      let go = Filename.concat dir "go" in
      let results = Filename.concat dir "results" in
      Unix.mkdir results 0o755;
      let child () =
        while not (Sys.file_exists go) do
          Unix.sleepf 0.001
        done;
        let outcome, cleanup =
          match Store.open_dir dir with
          | store -> ("won", fun () -> Store.close store)
          | exception Store.Locked _ -> ("locked", fun () -> ())
          | exception _ -> ("crashed", fun () -> ())
        in
        write_file
          (Filename.concat results (string_of_int (Unix.getpid ())))
          outcome;
        while Array.length (Sys.readdir results) < n do
          Unix.sleepf 0.001
        done;
        cleanup ();
        Unix._exit 0
      in
      let pids =
        List.init n (fun _ ->
            match Unix.fork () with 0 -> child () | pid -> pid)
      in
      write_file go "";
      List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
      let outcomes =
        List.map
          (fun f -> read_file (Filename.concat results f))
          (Array.to_list (Sys.readdir results))
      in
      let count o = List.length (List.filter (String.equal o) outcomes) in
      check_int "every contender reported" n (List.length outcomes);
      check_int "exactly one winner" 1 (count "won");
      check_int "everyone else saw Locked" (n - 1) (count "locked");
      (* The winner released on exit; no claim debris left behind. *)
      Store.with_dir dir (fun _ -> ());
      Array.iter
        (fun f ->
          check_bool "no leftover claim file" false
            (String.length f >= 10 && String.sub f 0 10 = "LOCK.claim"))
        (Sys.readdir dir))

let () =
  Alcotest.run "store"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
        ] );
      ( "record_log",
        [
          Alcotest.test_case "round-trip" `Quick test_log_roundtrip;
          Alcotest.test_case "torn tail at every offset" `Quick
            test_log_torn_tail_all_offsets;
          Alcotest.test_case "corrupt byte" `Quick test_log_corrupt_byte;
          Alcotest.test_case "rejects foreign files" `Quick
            test_log_rejects_foreign_file;
          QCheck_alcotest.to_alcotest prop_log_short_write_recovers;
        ] );
      ( "cache_key",
        [ Alcotest.test_case "canonical form + fingerprint" `Quick test_cache_key ] );
      ( "store",
        [
          Alcotest.test_case "insert/lookup/supersede" `Quick test_store_basic;
          Alcotest.test_case "compaction" `Quick test_store_compaction;
          Alcotest.test_case "truncated log recovers" `Quick
            test_store_truncated_log_recovers;
          Alcotest.test_case "heals after failed insert" `Quick
            test_store_heals_after_failed_insert;
          Alcotest.test_case "lock excludes second open" `Quick
            test_store_lock_excludes_second_open;
          Alcotest.test_case "stale lock is swept" `Quick
            test_store_lock_stale_is_swept;
          Alcotest.test_case "contending openers elect one winner" `Quick
            test_store_lock_takeover_race;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "cell codec round-trip" `Quick
            test_cell_result_codec_roundtrip;
          Alcotest.test_case "store round-trip" `Quick test_sweep_store_roundtrip;
          Alcotest.test_case "resume after kill" `Quick test_sweep_resume_after_kill;
        ] );
    ]
