(* Property suite fencing the CSR engine against the retained naive
   reference implementation (lib/graph/reference.ml): on arbitrary
   graphs, Graph/Bfs/Power/Subgraph must agree with the adjacency-list
   oracle exactly — same neighbour order, same distances, same renamed
   edges. A second block checks Bitset against a [bool array] model.

   These are the equivalence proofs behind the hot-path rewrite: any
   divergence here is an engine bug even if the tier-1 unit tests pass. *)

module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs
module Power = Ncg_graph.Power
module Subgraph = Ncg_graph.Subgraph
module Reference = Ncg_graph.Reference
module Bitset = Ncg_util.Bitset

(* --- Generators ----------------------------------------------------------- *)

(* Both implementations build from the same raw edge list, so the
   generator hands out (n, edges) rather than an already-built graph.
   Edges are arbitrary: duplicates, both orientations, disconnected
   graphs (no spanning tree is forced — BFS must handle unreachable
   vertices too). *)
let raw_graph_gen =
  QCheck.Gen.(
    int_range 1 30 >>= fun n ->
    int_range 0 (3 * n) >>= fun m ->
    list_repeat m (pair (int_bound (n - 1)) (int_bound (n - 1))) >>= fun pairs ->
    return (n, List.filter (fun (a, b) -> a <> b) pairs))

let print_raw (n, edges) =
  Printf.sprintf "n=%d edges=[%s]" n
    (String.concat "; " (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) edges))

let arb_raw = QCheck.make ~print:print_raw raw_graph_gen

let build (n, edges) = (Graph.of_edges ~n edges, Reference.of_edges ~n edges)

(* --- Graph construction ---------------------------------------------------- *)

let prop_neighbors_agree =
  QCheck.Test.make ~name:"CSR neighbours = reference adjacency (order included)"
    ~count:200 arb_raw (fun raw ->
      let g, r = build raw in
      Graph.order g = Reference.order r
      && Graph.size g = Reference.size r
      && List.for_all
           (fun u -> Graph.neighbors g u = Reference.neighbors r u)
           (List.init (Graph.order g) Fun.id))

let prop_edges_agree =
  QCheck.Test.make ~name:"CSR edge list = reference edge list" ~count:200 arb_raw
    (fun raw ->
      let g, r = build raw in
      Graph.edges g = Reference.edges r)

let prop_csr_well_formed =
  QCheck.Test.make ~name:"CSR invariants: sorted segments, symmetric arcs"
    ~count:200 arb_raw (fun raw ->
      let g, _ = build raw in
      let n = Graph.order g in
      let offsets = Graph.csr_offsets g and packed = Graph.csr_packed g in
      let ok = ref (offsets.(0) = 0 && offsets.(n) = Array.length packed) in
      for u = 0 to n - 1 do
        for i = offsets.(u) to offsets.(u + 1) - 1 do
          let v = packed.(i) in
          if v < 0 || v >= n || v = u then ok := false;
          if i > offsets.(u) && packed.(i - 1) >= v then ok := false;
          if not (Graph.mem_edge g v u) then ok := false
        done
      done;
      !ok)

let prop_with_star =
  QCheck.Test.make ~name:"with_star = rebuild from scratch" ~count:200
    QCheck.(
      make
        ~print:(fun (raw, _, _) -> print_raw raw)
        QCheck.Gen.(
          raw_graph_gen >>= fun (n, edges) ->
          int_bound (n - 1) >>= fun u ->
          list_size (int_bound (min 8 (n - 1))) (int_bound (n - 1)) >>= fun star ->
          return ((n, edges), u, star)))
    (fun ((n, edges), u, star) ->
      let star =
        List.sort_uniq compare (List.filter (fun v -> v <> u) star)
      in
      let g = Graph.of_edges ~n edges in
      let fast = Graph.with_star g u (Array.of_list star) in
      let slow =
        Graph.of_edges ~n
          (List.map (fun v -> (u, v)) star
          @ List.filter (fun (a, b) -> a <> u && b <> u) (Graph.edges g))
      in
      Graph.equal fast slow)

(* --- BFS ------------------------------------------------------------------- *)

let prop_bfs_distances =
  QCheck.Test.make ~name:"BFS distances = reference BFS (all sources)" ~count:100
    arb_raw (fun raw ->
      let g, r = build raw in
      List.for_all
        (fun src -> Bfs.distances g src = Reference.distances r src)
        (List.init (Graph.order g) Fun.id))

let prop_bfs_bounded =
  QCheck.Test.make ~name:"radius-bounded BFS and balls match the reference"
    ~count:100 arb_raw (fun raw ->
      let g, r = build raw in
      let n = Graph.order g in
      List.for_all
        (fun radius ->
          List.for_all
            (fun src ->
              Bfs.distances_within g src ~radius
              = Reference.distances_within r src ~radius
              && Bfs.ball g src ~radius = Reference.ball r src ~radius)
            (List.init n Fun.id))
        [ 0; 1; 2; n ])

let prop_bfs_scratch_reuse =
  QCheck.Test.make
    ~name:"one reused scratch over every source = fresh runs (visit order sane)"
    ~count:100 arb_raw (fun raw ->
      let g, r = build raw in
      let n = Graph.order g in
      let s = Bfs.create_scratch ~capacity:n () in
      List.for_all
        (fun src ->
          let visited = Bfs.run s g src ~radius:max_int in
          let dist = Bfs.dist_array s and order = Bfs.visit_order s in
          let expect = Reference.distances r src in
          let reachable =
            Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 expect
          in
          let prefix_ok = ref (visited = reachable) in
          for i = 0 to visited - 1 do
            (* Dequeue order is by non-decreasing distance, every entry
               reachable exactly once. *)
            if dist.(order.(i)) < 0 then prefix_ok := false;
            if i > 0 && dist.(order.(i)) < dist.(order.(i - 1)) then
              prefix_ok := false
          done;
          !prefix_ok && Array.sub dist 0 n = expect)
        (List.init n Fun.id))

(* --- Power graphs and k-views ---------------------------------------------- *)

let prop_power =
  QCheck.Test.make ~name:"power graph edges = reference power edges" ~count:60
    arb_raw (fun raw ->
      let g, r = build raw in
      List.for_all
        (fun h -> Graph.edges (Power.power g h) = Reference.power_edges r h)
        [ 1; 2; 3 ])

let prop_ball_sets =
  QCheck.Test.make ~name:"ball_sets bitsets = reference balls" ~count:60 arb_raw
    (fun raw ->
      let g, r = build raw in
      let n = Graph.order g in
      List.for_all
        (fun radius ->
          let sets = Power.ball_sets g radius in
          List.for_all
            (fun u -> Bitset.to_list sets.(u) = Reference.ball r u ~radius)
            (List.init n Fun.id))
        [ 0; 1; 2 ])

let prop_induced =
  QCheck.Test.make ~name:"induced subgraph = reference renamed edges" ~count:100
    QCheck.(
      make
        ~print:(fun (raw, _) -> print_raw raw)
        QCheck.Gen.(
          raw_graph_gen >>= fun (n, edges) ->
          list_size (int_bound n) (int_bound (n - 1)) >>= fun verts ->
          return ((n, edges), verts)))
    (fun ((n, edges), verts) ->
      let verts = List.sort_uniq compare verts in
      let g = Graph.of_edges ~n edges and r = Reference.of_edges ~n edges in
      let sub, mapping = Subgraph.induced g verts in
      let ref_edges, ref_to_host = Reference.induced_edges r verts in
      Graph.edges sub = ref_edges && mapping.Subgraph.to_host = ref_to_host)

let prop_ball_induced =
  QCheck.Test.make ~name:"ball_induced = induced on the reference ball" ~count:100
    arb_raw (fun raw ->
      let g, r = build raw in
      let n = Graph.order g in
      let s = Bfs.create_scratch ~capacity:n () in
      List.for_all
        (fun radius ->
          List.for_all
            (fun u ->
              let sub, mapping = Subgraph.ball_induced ~scratch:s g u ~radius in
              let expect_sub, expect_map =
                Subgraph.induced g (Reference.ball r u ~radius)
              in
              Graph.equal sub expect_sub
              && mapping.Subgraph.to_host = expect_map.Subgraph.to_host)
            (List.init n Fun.id))
        [ 0; 1; 3 ])

(* --- Bitset vs bool array model --------------------------------------------- *)

(* A short program of mutations applied in lockstep to a Bitset and a
   [bool array]; after every step the full observable state must agree.
   Capacities straddle the 63-bit word boundary on purpose. *)
let prop_bitset_model =
  QCheck.Test.make ~name:"bitset ops = bool array model" ~count:200
    QCheck.(
      make
        ~print:(fun (n, ops) ->
          Printf.sprintf "n=%d ops=%d" n (List.length ops))
        QCheck.Gen.(
          int_range 1 140 >>= fun n ->
          list_size (int_range 1 40)
            (pair (int_bound 3) (int_bound (n - 1))) >>= fun ops ->
          return (n, ops)))
    (fun (n, ops) ->
      let s = Bitset.create n in
      let model = Array.make n false in
      let agree () =
        Bitset.cardinal s
        = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 model
        && Bitset.to_list s
           = List.filter (fun i -> model.(i)) (List.init n Fun.id)
        && List.for_all (fun i -> Bitset.mem s i = model.(i)) (List.init n Fun.id)
      in
      List.for_all
        (fun (op, i) ->
          (match op with
          | 0 -> (
              Bitset.add s i;
              model.(i) <- true)
          | 1 ->
              Bitset.remove s i;
              model.(i) <- false
          | 2 ->
              Bitset.fill s;
              Array.fill model 0 n true
          | _ ->
              Bitset.clear s;
              Array.fill model 0 n false);
          agree ())
        ops)

let prop_bitset_binary_ops =
  QCheck.Test.make ~name:"bitset set algebra = bool array set algebra" ~count:200
    QCheck.(
      make
        ~print:(fun (n, xs, ys) ->
          Printf.sprintf "n=%d |xs|=%d |ys|=%d" n (List.length xs) (List.length ys))
        QCheck.Gen.(
          int_range 1 140 >>= fun n ->
          list_size (int_bound 60) (int_bound (n - 1)) >>= fun xs ->
          list_size (int_bound 60) (int_bound (n - 1)) >>= fun ys ->
          return (n, xs, ys)))
    (fun (n, xs, ys) ->
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      let ma = Array.make n false and mb = Array.make n false in
      List.iter (fun i -> ma.(i) <- true) xs;
      List.iter (fun i -> mb.(i) <- true) ys;
      let elts m = List.filter (fun i -> m.(i)) (List.init n Fun.id) in
      let count p = List.length (List.filter p (List.init n Fun.id)) in
      Bitset.to_list (Bitset.union a b)
      = elts (Array.init n (fun i -> ma.(i) || mb.(i)))
      && Bitset.to_list (Bitset.inter a b)
         = elts (Array.init n (fun i -> ma.(i) && mb.(i)))
      && Bitset.to_list (Bitset.diff a b)
         = elts (Array.init n (fun i -> ma.(i) && not mb.(i)))
      && Bitset.inter_cardinal a b = count (fun i -> ma.(i) && mb.(i))
      && Bitset.diff_cardinal a b = count (fun i -> ma.(i) && not mb.(i))
      && Bitset.subset a b
         = List.for_all (fun i -> (not ma.(i)) || mb.(i)) (List.init n Fun.id)
      && Bitset.equal a b = (elts ma = elts mb)
      && Bitset.disjoint a b = (count (fun i -> ma.(i) && mb.(i)) = 0))

let prop_bitset_scan =
  QCheck.Test.make ~name:"iter/fold/choose_from agree with the model" ~count:200
    QCheck.(
      make
        ~print:(fun (n, xs) -> Printf.sprintf "n=%d |xs|=%d" n (List.length xs))
        QCheck.Gen.(
          int_range 1 140 >>= fun n ->
          list_size (int_bound 60) (int_bound (n - 1)) >>= fun xs ->
          return (n, xs)))
    (fun (n, xs) ->
      let s = Bitset.of_list n xs in
      let sorted = List.sort_uniq compare xs in
      let collected = ref [] in
      Bitset.iter (fun i -> collected := i :: !collected) s;
      List.rev !collected = sorted
      && Bitset.fold (fun i acc -> acc + i) s 0 = List.fold_left ( + ) 0 sorted
      && List.for_all
           (fun from ->
             Bitset.choose_from s from
             = List.find_opt (fun i -> i >= from) sorted)
           (List.init (n + 1) Fun.id))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "csr_equiv"
    [
      ( "graph",
        [
          qt prop_neighbors_agree;
          qt prop_edges_agree;
          qt prop_csr_well_formed;
          qt prop_with_star;
        ] );
      ( "bfs",
        [ qt prop_bfs_distances; qt prop_bfs_bounded; qt prop_bfs_scratch_reuse ] );
      ( "power+views", [ qt prop_power; qt prop_ball_sets; qt prop_induced; qt prop_ball_induced ] );
      ( "bitset",
        [ qt prop_bitset_model; qt prop_bitset_binary_ops; qt prop_bitset_scan ] );
    ]
