(* Tests for the fault plane (Ncg_fault): plan parsing, deterministic
   trigger semantics under arming, cooperative cancellation, the
   supervised executor, and the supervised sweep's
   quarantine-and-resume behaviour. *)

module Inject = Ncg_fault.Inject
module Cancel = Ncg_fault.Cancel
module Executor = Ncg_fault.Executor
module Experiment = Ncg.Experiment
module Dynamics = Ncg.Dynamics
module Store = Ncg_store.Store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Every test must leave the process clean: no plan installed, calling
   domain disarmed, shutdown flag clear. *)
let hermetic f =
  Fun.protect
    ~finally:(fun () ->
      Inject.clear ();
      Inject.disarm ();
      Cancel.reset_shutdown ())
    f

let with_temp_dir f =
  let dir = Filename.temp_file "ncg_fault_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* --- Plan parsing --------------------------------------------------------- *)

let test_parse_plan () =
  (match Inject.parse_plan ~seed:3 "sweep.cell=raise" with
  | Ok
      {
        seed;
        rules =
          [
            {
              site;
              action = Inject.Raise;
              trigger = Inject.Always;
              budget = None;
            };
          ];
      } ->
      check_int "seed" 3 seed;
      check_string "site" "sweep.cell" site
  | Ok _ -> Alcotest.fail "unexpected parse"
  | Error e -> Alcotest.fail e);
  (match
     Inject.parse_plan ~seed:0
       "bfs.traverse=delay:2.5@every:10,record_log.append=short:8@nth:2,\
        best_response.compute=raise@p:0.25"
   with
  | Ok { rules = [ r1; r2; r3 ]; _ } ->
      check_bool "delay" true (r1.Inject.action = Inject.Delay_ns 2_500_000L);
      check_bool "every" true (r1.Inject.trigger = Inject.Every 10);
      check_bool "short" true (r2.Inject.action = Inject.Short_write 8);
      check_bool "nth" true (r2.Inject.trigger = Inject.Nth 2);
      check_bool "prob" true (r3.Inject.trigger = Inject.Prob 0.25)
  | Ok _ -> Alcotest.fail "unexpected parse"
  | Error e -> Alcotest.fail e);
  let bad spec =
    match Inject.parse_plan ~seed:0 spec with
    | Ok _ -> Alcotest.failf "accepted %S" spec
    | Error _ -> ()
  in
  bad "no.such.site=raise";
  bad "sweep.cell=explode";
  bad "sweep.cell=raise@sometimes";
  bad "sweep.cell=delay:x";
  bad "sweep.cell=short:-1";
  bad "sweep.cell=raise@p:1.5";
  bad "sweep.cell=raise@nth:0";
  bad "sweep.cell";
  bad ""

let test_plan_to_string_roundtrip () =
  List.iter
    (fun spec ->
      match Inject.parse_plan ~seed:11 spec with
      | Error e -> Alcotest.fail e
      | Ok plan -> (
          check_string "round-trip" spec (Inject.plan_to_string plan);
          match Inject.parse_plan ~seed:11 (Inject.plan_to_string plan) with
          | Ok plan' -> check_bool "reparse" true (plan = plan')
          | Error e -> Alcotest.fail e))
    [
      "sweep.cell=raise";
      "bfs.traverse=delay:5@every:3";
      "record_log.append=short:4@nth:2";
      "best_response.compute=raise@p:0.5";
      "sweep.cell=raise,bfs.traverse=delay:1@nth:7";
    ]

(* --- Trigger semantics under arm/disarm ----------------------------------- *)

let install spec =
  match Inject.parse_plan ~seed:99 spec with
  | Ok plan -> Inject.install plan
  | Error e -> Alcotest.fail e

(* Hit [site] [n] times; return the (1-based) hit numbers that raised. *)
let firing_pattern site n =
  List.filter_map
    (fun i ->
      match Inject.hit site with
      | () -> None
      | exception Inject.Fault _ -> Some i)
    (List.init n (fun i -> i + 1))

let test_unarmed_never_fires () =
  hermetic (fun () ->
      install "sweep.cell=raise";
      (* Plan installed but this domain not armed: all no-ops. *)
      check_bool "not armed" false (Inject.armed ());
      check_int "no fires" 0 (List.length (firing_pattern Inject.sweep_cell 10)))

let test_trigger_always_nth_every () =
  hermetic (fun () ->
      install "sweep.cell=raise";
      Inject.arm ~scope:0;
      check_bool "armed" true (Inject.armed ());
      check_bool "always" true
        (firing_pattern Inject.sweep_cell 4 = [ 1; 2; 3; 4 ]);
      install "sweep.cell=raise@nth:3";
      Inject.arm ~scope:0;
      check_bool "nth:3" true (firing_pattern Inject.sweep_cell 8 = [ 3 ]);
      install "sweep.cell=raise@every:3";
      Inject.arm ~scope:0;
      check_bool "every:3" true (firing_pattern Inject.sweep_cell 9 = [ 3; 6; 9 ]))

let test_prob_deterministic_per_scope () =
  hermetic (fun () ->
      install "sweep.cell=raise@p:0.4";
      let pattern scope =
        Inject.arm ~scope;
        firing_pattern Inject.sweep_cell 64
      in
      let p0 = pattern 0 in
      check_bool "some fired" true (p0 <> []);
      check_bool "some passed" true (List.length p0 < 64);
      (* Re-arming the same scope resets the stream: same pattern. *)
      check_bool "rearm reproduces" true (pattern 0 = p0);
      (* A different scope draws an independent stream. *)
      check_bool "scopes independent" true (pattern 1 <> p0);
      check_bool "scope reproducible" true (pattern 1 = pattern 1))

let test_clear_keeps_armed_disarm_clears () =
  hermetic (fun () ->
      install "sweep.cell=raise";
      Inject.arm ~scope:5;
      Inject.clear ();
      (* Documented: already-armed domains stay armed until disarm/re-arm. *)
      check_bool "still fires" true (firing_pattern Inject.sweep_cell 1 = [ 1 ]);
      Inject.arm ~scope:5;
      (* Re-arm with no plan installed disarms. *)
      check_bool "disarmed by re-arm" false (Inject.armed ());
      check_int "no fires" 0 (List.length (firing_pattern Inject.sweep_cell 5)))

(* --- Cancel --------------------------------------------------------------- *)

let test_step_budget () =
  hermetic (fun () ->
      (* Unlimited: any number of checkpoints. *)
      Cancel.with_step_budget 0 (fun () ->
          for _ = 1 to 100 do
            Cancel.checkpoint ()
          done);
      (* Budget n: exactly n checkpoints pass, the n+1-th raises. *)
      let ran = ref 0 in
      (match
         Cancel.with_step_budget 5 (fun () ->
             for _ = 1 to 100 do
               Cancel.checkpoint ();
               incr ran
             done)
       with
      | () -> Alcotest.fail "budget never tripped"
      | exception Cancel.Timed_out what ->
          check_string "what" "step budget exhausted" what);
      check_int "checkpoints before trip" 5 !ran;
      (* Budgets restore on exit: the enclosing scope is unlimited again. *)
      for _ = 1 to 50 do
        Cancel.checkpoint ()
      done)

let test_deadline_and_shutdown () =
  hermetic (fun () ->
      (match
         Cancel.with_control ~timeout_ns:1_000L (fun () ->
             let rec spin () =
               Cancel.checkpoint ();
               spin ()
             in
             spin ())
       with
      | () -> Alcotest.fail "deadline never tripped"
      | exception Cancel.Timed_out what -> check_string "what" "deadline" what);
      check_bool "no shutdown yet" true (Cancel.shutdown_requested () = None);
      Cancel.request_shutdown 2;
      (match Cancel.checkpoint () with
      | () -> Alcotest.fail "shutdown not observed"
      | exception Cancel.Interrupted s -> check_int "signal" 2 s);
      check_bool "recorded" true (Cancel.shutdown_requested () = Some 2);
      Cancel.reset_shutdown ();
      Cancel.checkpoint ())

(* --- Executor ------------------------------------------------------------- *)

let ok_exn = function
  | Ok v -> v
  | Error (f : Executor.failure) ->
      Alcotest.failf "task %d quarantined: %s" f.Executor.index f.Executor.exn_text

let test_executor_clean () =
  hermetic (fun () ->
      List.iter
        (fun domains ->
          let out =
            Executor.map ~domains (fun ~index ~attempt:_ -> index * index) 10
          in
          check_int "length" 10 (Array.length out);
          Array.iteri
            (fun i o -> check_int "value" (i * i) (ok_exn o))
            out)
        [ 1; 2; 4 ])

let test_executor_retry_and_quarantine () =
  hermetic (fun () ->
      (* Task 3 fails its first 2 attempts, task 7 always fails. *)
      let f ~index ~attempt =
        if index = 3 && attempt <= 2 then failwith "transient";
        if index = 7 then failwith "permanent";
        index
      in
      let events = ref [] in
      let record ev =
        match ev with
        | Executor.Attempt_failed { index; attempt; will_retry; _ } ->
            events := (index, attempt, will_retry) :: !events
        | _ -> ()
      in
      let out = Executor.map ~max_retries:2 ~on_event:record f 10 in
      check_int "task 3 recovered" 3 (ok_exn out.(3));
      (match out.(7) with
      | Ok _ -> Alcotest.fail "task 7 should be quarantined"
      | Error f ->
          check_int "attempts" 3 f.Executor.attempts;
          check_bool "kind" true (f.Executor.kind = Executor.Crashed);
          check_bool "text" true
            (String.length f.Executor.exn_text > 0
            && f.Executor.exn = Failure "permanent"));
      (* Every other task untouched. *)
      List.iter
        (fun i -> if i <> 7 then check_int "value" i (ok_exn out.(i)))
        (List.init 10 Fun.id);
      let failed_events = List.sort compare !events in
      check_bool "event trail" true
        (failed_events
        = [
            (3, 1, true); (3, 2, true); (7, 1, true); (7, 2, true); (7, 3, false);
          ]))

let test_executor_no_retry_on_zero_budget () =
  hermetic (fun () ->
      let attempts = Atomic.make 0 in
      let f ~index:_ ~attempt:_ =
        Atomic.incr attempts;
        failwith "boom"
      in
      let out = Executor.map f 1 in
      (match out.(0) with
      | Ok _ -> Alcotest.fail "should fail"
      | Error f -> check_int "attempts" 1 f.Executor.attempts);
      check_int "ran once" 1 (Atomic.get attempts))

let test_executor_deadline () =
  hermetic (fun () ->
      let f ~index ~attempt:_ =
        if index = 1 then (
          let rec spin () =
            Cancel.checkpoint ();
            spin ()
          in
          spin ());
        index
      in
      let out = Executor.map ~deadline_ns:5_000_000L ~domains:2 f 4 in
      (match out.(1) with
      | Ok _ -> Alcotest.fail "spinner should time out"
      | Error f -> check_bool "kind" true (f.Executor.kind = Executor.Timeout));
      List.iter
        (fun i -> if i <> 1 then check_int "value" i (ok_exn out.(i)))
        [ 0; 2; 3 ])

let test_executor_shutdown_marks_unstarted () =
  hermetic (fun () ->
      (* Single domain: task 2 requests shutdown; everything after it is
         reported interrupted without having started. *)
      let f ~index ~attempt:_ =
        if index = 2 then Cancel.request_shutdown 15;
        Cancel.checkpoint ();
        index
      in
      let out = Executor.map f 6 in
      check_int "task 0 done" 0 (ok_exn out.(0));
      check_int "task 1 done" 1 (ok_exn out.(1));
      (match out.(2) with
      | Ok _ -> Alcotest.fail "task 2 should be interrupted"
      | Error f ->
          check_bool "kind" true (f.Executor.kind = Executor.Interrupted);
          check_int "attempted" 1 f.Executor.attempts);
      List.iter
        (fun i ->
          match out.(i) with
          | Ok _ -> Alcotest.failf "task %d should not have started" i
          | Error f ->
              check_int "no attempts" 0 f.Executor.attempts;
              check_bool "kind" true (f.Executor.kind = Executor.Interrupted))
        [ 3; 4; 5 ])

let test_executor_fault_plan_deterministic () =
  hermetic (fun () ->
      install "sweep.cell=raise@p:0.45";
      let f ~index:_ ~attempt:_ =
        Inject.hit Inject.sweep_cell;
        ()
      in
      let failures domains =
        let out = Executor.map ~domains f 32 in
        Array.to_list out
        |> List.filteri (fun _ o -> Result.is_error o)
        |> List.length
      in
      let outcome domains =
        Executor.map ~domains f 32 |> Array.map Result.is_ok |> Array.to_list
      in
      let base = outcome 1 in
      check_bool "some quarantined" true (failures 1 > 0);
      check_bool "some survived" true (failures 1 < 32);
      check_bool "domains=2 identical" true (outcome 2 = base);
      check_bool "domains=4 identical" true (outcome 4 = base);
      (* nth:1 under one retry: every task fails once, then recovers. *)
      install "sweep.cell=raise@nth:1";
      let out = Executor.map ~max_retries:1 ~domains:2 f 8 in
      Array.iter (fun o -> ignore (ok_exn o)) out)

(* --- Supervised sweep ----------------------------------------------------- *)

let n_nodes = 12
let trials = 2
let sweep_seed = 2014
let cells = Experiment.grid ~alphas:[ 0.5; 1.0 ] ~ks:[ 2; 1000 ]
let make_initial ~seed = Experiment.initial_tree ~seed ~n:n_nodes

let make_config (c : Experiment.cell) =
  {
    (Dynamics.default_config ~alpha:c.Experiment.alpha ~k:c.Experiment.k) with
    Dynamics.solver = `Budgeted 2_000;
    collect_features = false;
  }

let run_supervised ?max_retries ?store ?store_context ~domains () =
  Experiment.sweep_supervised ~domains ?max_retries ?store ?store_context
    ~make_initial ~make_config ~cells ~trials ~seed:sweep_seed ()

let clean_results () =
  List.map
    (function
      | Ok (r : Experiment.cell_result) -> r
      | Error (f : Experiment.cell_failure) ->
          Alcotest.failf "clean sweep quarantined cell %d" f.Experiment.index)
    (run_supervised ~domains:1 ())

let same_cell (a : Experiment.cell_result) (b : Experiment.cell_result) =
  a.Experiment.runs = b.Experiment.runs
  && a.Experiment.counters = b.Experiment.counters
  && Ncg_obs.Histogram.counts_only a.Experiment.histograms
     = Ncg_obs.Histogram.counts_only b.Experiment.histograms

let test_sweep_transient_fault_retries () =
  hermetic (fun () ->
      let clean = clean_results () in
      (* Every cell crashes on its first attempt and recovers on retry;
         results must match the clean run exactly. *)
      install "sweep.cell=raise@nth:1";
      List.iter2
        (fun expected outcome ->
          match outcome with
          | Ok r -> check_bool "matches clean" true (same_cell expected r)
          | Error (f : Experiment.cell_failure) ->
              Alcotest.failf "cell %d quarantined: attempts=%d %s"
                f.Experiment.index f.Experiment.attempts f.Experiment.exn_text)
        clean
        (run_supervised ~max_retries:1 ~domains:2 ()))

let test_sweep_quarantine_is_deterministic () =
  hermetic (fun () ->
      let clean = clean_results () in
      install "sweep.cell=raise@p:0.5";
      let failure_indices outcomes =
        List.filter_map
          (fun o ->
            match o with
            | Ok _ -> None
            | Error (f : Experiment.cell_failure) -> Some f.Experiment.index)
          outcomes
      in
      let base = run_supervised ~domains:1 () in
      let failed = failure_indices base in
      check_bool "some quarantined" true (failed <> []);
      check_bool "some survived" true
        (List.length failed < List.length cells);
      (* Same plan, any domain count: identical failure vector, and every
         surviving cell identical to the clean run. *)
      List.iter
        (fun domains ->
          let out = run_supervised ~domains () in
          check_bool "failure vector stable" true
            (failure_indices out = failed);
          List.iteri
            (fun i o ->
              match o with
              | Ok r ->
                  check_bool "survivor matches clean" true
                    (same_cell (List.nth clean i) r)
              | Error _ -> check_bool "expected failure" true (List.mem i failed))
            out)
        [ 1; 2; 4 ])

let test_sweep_quarantine_then_resume () =
  hermetic (fun () ->
      with_temp_dir (fun dir ->
          let clean = clean_results () in
          let context = [ ("test", Ncg_obs.Json.String "fault-resume") ] in
          install "sweep.cell=raise@p:0.5";
          let failed =
            Store.with_dir dir (fun store ->
                run_supervised ~domains:2 ~store ~store_context:context ()
                |> Experiment.sweep_failures
                |> List.map (fun (f : Experiment.cell_failure) ->
                       f.Experiment.index))
          in
          check_bool "some quarantined" true (failed <> []);
          (* The fault is gone; a resume against the same store computes
             exactly the quarantined cells and returns the full grid. *)
          Inject.clear ();
          Store.with_dir dir (fun store ->
              let out =
                run_supervised ~domains:1 ~store ~store_context:context ()
              in
              let st = Store.stats store in
              check_int "hits are the survivors"
                (List.length cells - List.length failed)
                st.Store.hits;
              check_int "misses are the quarantined" (List.length failed)
                st.Store.misses;
              List.iter2
                (fun expected o ->
                  match o with
                  | Ok r -> check_bool "matches clean" true (same_cell expected r)
                  | Error (f : Experiment.cell_failure) ->
                      Alcotest.failf "resume left cell %d quarantined"
                        f.Experiment.index)
                clean out)))

(* --- Per-site fault budgets ------------------------------------------------ *)

let test_budget_parse () =
  hermetic (fun () ->
      (match Inject.parse_plan ~seed:0 "sweep.cell=raise@budget:2" with
      | Ok { rules = [ r ]; _ } ->
          check_bool "trigger defaults" true (r.Inject.trigger = Inject.Always);
          check_bool "budget" true (r.Inject.budget = Some 2)
      | Ok _ -> Alcotest.fail "unexpected parse"
      | Error e -> Alcotest.fail e);
      (* The trigger and budget qualifiers compose in either order. *)
      List.iter
        (fun spec ->
          match Inject.parse_plan ~seed:0 spec with
          | Ok { rules = [ r ]; _ } ->
              check_bool "trigger" true (r.Inject.trigger = Inject.Prob 0.5);
              check_bool "budget" true (r.Inject.budget = Some 1)
          | Ok _ -> Alcotest.fail "unexpected parse"
          | Error e -> Alcotest.fail e)
        [ "sweep.cell=raise@p:0.5@budget:1"; "sweep.cell=raise@budget:1@p:0.5" ];
      let bad spec =
        match Inject.parse_plan ~seed:0 spec with
        | Ok _ -> Alcotest.failf "accepted %S" spec
        | Error _ -> ()
      in
      bad "sweep.cell=raise@budget:0";
      bad "sweep.cell=raise@budget:x";
      bad "sweep.cell=raise@budget";
      bad "sweep.cell=raise@budget:1@budget:2";
      bad "sweep.cell=raise@nth:1@every:2";
      (* Round-trip, canonical qualifier order (trigger then budget). *)
      List.iter
        (fun spec ->
          match Inject.parse_plan ~seed:5 spec with
          | Error e -> Alcotest.fail e
          | Ok plan -> (
              check_string "round-trip" spec (Inject.plan_to_string plan);
              match Inject.parse_plan ~seed:5 (Inject.plan_to_string plan) with
              | Ok plan' -> check_bool "reparse" true (plan = plan')
              | Error e -> Alcotest.fail e))
        [
          "sweep.cell=raise@budget:2";
          "bfs.traverse=delay:5@every:3@budget:1";
          "record_log.append=short:4@nth:2,sweep.cell=raise@p:0.25@budget:3";
        ])

let test_budget_firing () =
  hermetic (fun () ->
      install "sweep.cell=raise@budget:2";
      Inject.arm ~scope:0;
      check_bool "always@budget:2" true
        (firing_pattern Inject.sweep_cell 10 = [ 1; 2 ]);
      install "sweep.cell=raise@every:3@budget:2";
      Inject.arm ~scope:0;
      check_bool "every:3@budget:2" true
        (firing_pattern Inject.sweep_cell 12 = [ 3; 6 ]);
      (* Re-arming resets the budget along with the hit counters. *)
      Inject.arm ~scope:0;
      check_bool "rearm resets" true
        (firing_pattern Inject.sweep_cell 12 = [ 3; 6 ]))

let test_budget_prob_prefix () =
  hermetic (fun () ->
      (* A budgeted Prob rule fires on a prefix of the unlimited rule's
         pattern: same per-scope stream, and draws stop only once the
         budget is exhausted — at a hit that is itself deterministic. *)
      install "sweep.cell=raise@p:0.5";
      Inject.arm ~scope:7;
      let unlimited = firing_pattern Inject.sweep_cell 64 in
      check_bool "enough fires to test" true (List.length unlimited >= 3);
      install "sweep.cell=raise@p:0.5@budget:3";
      Inject.arm ~scope:7;
      let budgeted = firing_pattern Inject.sweep_cell 64 in
      check_int "exactly budget fires" 3 (List.length budgeted);
      check_bool "prefix of unlimited" true
        (budgeted
        = [ List.nth unlimited 0; List.nth unlimited 1; List.nth unlimited 2 ]);
      Inject.arm ~scope:7;
      check_bool "reproducible" true
        (firing_pattern Inject.sweep_cell 64 = budgeted))

let test_executor_budget_transient () =
  hermetic (fun () ->
      (* budget:1 with an always trigger: each task's first attempt
         crashes, and because hit counters (and spent budget) persist
         across retries, the retry passes — a transient fault expressed
         without knowing which hit number the attempt lands on. *)
      install "sweep.cell=raise@budget:1";
      let out =
        Executor.map ~domains:2 ~max_retries:1
          (fun ~index ~attempt:_ ->
            Inject.(hit sweep_cell);
            index * 10)
          4
      in
      Array.iteri (fun i r -> check_int "value" (i * 10) (ok_exn r)) out)

(* --- Cancellation inside the set-cover solver ------------------------------ *)

let test_solver_cancel () =
  hermetic (fun () ->
      let module Set_cover = Ncg_solver.Set_cover in
      let module Bitset = Ncg_util.Bitset in
      let universe = 16 in
      let sets =
        List.concat_map
          (fun i ->
            [
              [ i; (i + 1) mod universe; (i + 5) mod universe ];
              [ i; (i + 2) mod universe ];
            ])
          (List.init universe Fun.id)
      in
      let inst =
        {
          Set_cover.universe;
          sets = Array.of_list (List.map (Bitset.of_list universe) sets);
          pre_covered = None;
        }
      in
      (* Feasible and solvable when nothing is armed... *)
      (match Set_cover.solve inst with
      | Some _ -> ()
      | None -> Alcotest.fail "instance should be feasible");
      (* ...but a step budget trips a checkpoint inside the solver's own
         search loops, long before the node budget would. *)
      (match Cancel.with_step_budget 8 (fun () -> Set_cover.solve inst) with
      | _ -> Alcotest.fail "step budget never tripped"
      | exception Cancel.Timed_out what ->
          check_string "what" "step budget exhausted" what);
      (* And an (already expired) deadline cuts the solve off too, which
         is how --cell-deadline-ms reaches one oversized solve call. *)
      match Cancel.with_control ~timeout_ns:0L (fun () -> Set_cover.solve inst) with
      | _ -> Alcotest.fail "deadline never tripped"
      | exception Cancel.Timed_out what -> check_string "what" "deadline" what)

let () =
  Alcotest.run "ncg_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "parse" `Quick test_parse_plan;
          Alcotest.test_case "to_string round-trip" `Quick
            test_plan_to_string_roundtrip;
          Alcotest.test_case "budget parse + round-trip" `Quick
            test_budget_parse;
        ] );
      ( "budget",
        [
          Alcotest.test_case "caps fires" `Quick test_budget_firing;
          Alcotest.test_case "prob prefix + determinism" `Quick
            test_budget_prob_prefix;
          Alcotest.test_case "transient via executor retry" `Quick
            test_executor_budget_transient;
        ] );
      ( "solver",
        [ Alcotest.test_case "cancellation" `Quick test_solver_cancel ] );
      ( "triggers",
        [
          Alcotest.test_case "unarmed never fires" `Quick test_unarmed_never_fires;
          Alcotest.test_case "always/nth/every" `Quick
            test_trigger_always_nth_every;
          Alcotest.test_case "prob deterministic per scope" `Quick
            test_prob_deterministic_per_scope;
          Alcotest.test_case "clear vs disarm" `Quick
            test_clear_keeps_armed_disarm_clears;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "step budget" `Quick test_step_budget;
          Alcotest.test_case "deadline + shutdown" `Quick
            test_deadline_and_shutdown;
        ] );
      ( "executor",
        [
          Alcotest.test_case "clean map" `Quick test_executor_clean;
          Alcotest.test_case "retry + quarantine" `Quick
            test_executor_retry_and_quarantine;
          Alcotest.test_case "no retry by default" `Quick
            test_executor_no_retry_on_zero_budget;
          Alcotest.test_case "deadline" `Quick test_executor_deadline;
          Alcotest.test_case "shutdown marks unstarted" `Quick
            test_executor_shutdown_marks_unstarted;
          Alcotest.test_case "fault plan deterministic" `Quick
            test_executor_fault_plan_deterministic;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "transient fault + retry" `Quick
            test_sweep_transient_fault_retries;
          Alcotest.test_case "deterministic quarantine" `Quick
            test_sweep_quarantine_is_deterministic;
          Alcotest.test_case "quarantine then resume" `Quick
            test_sweep_quarantine_then_resume;
        ] );
    ]
