(* Tests for the observability library: JSON emitter/parser, counters,
   spans, latency histograms, GC deltas, Chrome traces, event log. *)

module Json = Ncg_obs.Json
module Metrics = Ncg_obs.Metrics
module Span = Ncg_obs.Span
module Histogram = Ncg_obs.Histogram
module Gc_stats = Ncg_obs.Gc_stats
module Chrome_trace = Ncg_obs.Chrome_trace
module Events = Ncg_obs.Events

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec at i = i + m <= n && (String.sub s i m = affix || at (i + 1)) in
  at 0

(* --- Json ---------------------------------------------------------------- *)

let test_json_scalars () =
  check_string "null" "null" (Json.to_string Json.Null);
  check_string "true" "true" (Json.to_string (Json.Bool true));
  check_string "int" "-42" (Json.to_string (Json.Int (-42)));
  check_string "float" "1.5" (Json.to_string (Json.Float 1.5));
  check_string "float int-valued gets a dot" "2.0" (Json.to_string (Json.Float 2.0));
  check_string "nan is null" "null" (Json.to_string (Json.Float nan));
  check_string "inf is null" "null" (Json.to_string (Json.Float infinity))

let test_json_escaping () =
  check_string "quotes and backslash" {|"a\"b\\c"|}
    (Json.to_string (Json.String {|a"b\c|}));
  check_string "newline" {|"a\nb"|} (Json.to_string (Json.String "a\nb"));
  check_string "control char" "\"\\u0001\"" (Json.to_string (Json.String "\x01"))

let test_json_structures () =
  check_string "list" "[1,2]" (Json.to_string (Json.List [ Json.Int 1; Json.Int 2 ]));
  check_string "empty obj" "{}" (Json.to_string (Json.Obj []));
  check_string "obj"
    {|{"a":1,"b":[true]}|}
    (Json.to_string
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true ]) ]));
  (* Pretty form parses back to the same compact content modulo whitespace. *)
  let v = Json.Obj [ ("xs", Json.List [ Json.Int 1 ]); ("s", Json.String "q") ] in
  let strip s =
    String.concat ""
      (String.split_on_char '\n'
         (String.concat "" (String.split_on_char ' ' s)))
  in
  check_string "pretty == compact modulo layout" (Json.to_string v)
    (strip (Json.to_string_pretty v))

(* --- Metrics ------------------------------------------------------------- *)

let test_counters_noop_without_collector () =
  check_bool "not recording" false (Metrics.recording ());
  (* Must be a no-op, not a crash. *)
  Metrics.incr Metrics.bfs_calls;
  Metrics.add Metrics.set_cover_nodes 5;
  check_bool "still not recording" false (Metrics.recording ())

let test_collect_basic () =
  let (), snap =
    Metrics.collect (fun () ->
        check_bool "recording inside" true (Metrics.recording ());
        Metrics.incr Metrics.bfs_calls;
        Metrics.incr Metrics.bfs_calls;
        Metrics.add Metrics.dynamics_moves 3)
  in
  check_int "bfs twice" 2 (List.assoc "bfs.calls" snap);
  check_int "moves" 3 (List.assoc "dynamics.moves" snap);
  check_int "untouched is zero" 0 (List.assoc "dynamics.rounds" snap);
  check_bool "recording off after" false (Metrics.recording ())

let test_collect_nests () =
  let (inner_snap, ()), outer_snap =
    Metrics.collect (fun () ->
        Metrics.incr Metrics.bfs_calls;
        let inner =
          Metrics.collect (fun () ->
              Metrics.incr Metrics.bfs_calls;
              Metrics.incr Metrics.bfs_calls)
        in
        (snd inner, ()))
  in
  check_int "inner sees its own" 2 (List.assoc "bfs.calls" inner_snap);
  check_int "outer accumulates inner" 3 (List.assoc "bfs.calls" outer_snap)

let test_collect_restores_on_exception () =
  (try
     ignore (Metrics.collect (fun () -> raise Exit));
     Alcotest.fail "expected Exit"
   with Exit -> ());
  check_bool "collector uninstalled after raise" false (Metrics.recording ())

let test_register_idempotent () =
  let a = Metrics.register "test.some_counter" in
  let b = Metrics.register "test.some_counter" in
  check_bool "same slot" true (a == b || Metrics.name a = Metrics.name b);
  check_string "name round-trips" "test.some_counter" (Metrics.name a)

let test_merge_and_total () =
  let a = [ ("x", 1); ("y", 2) ] and b = [ ("y", 40); ("z", 5) ] in
  let m = Metrics.merge a b in
  check_int "x" 1 (List.assoc "x" m);
  check_int "y summed" 42 (List.assoc "y" m);
  check_int "z" 5 (List.assoc "z" m);
  check_int "total of none is empty" 0 (List.length (Metrics.total []));
  let t = Metrics.total [ a; b; a ] in
  check_int "total y" 44 (List.assoc "y" t)

let test_instrumented_code_counts () =
  let g = Ncg_gen.Classic.path 6 in
  let (), snap = Metrics.collect (fun () -> ignore (Ncg_graph.Bfs.distances g 0)) in
  check_int "one bfs" 1 (List.assoc "bfs.calls" snap);
  let json = Json.to_string (Metrics.to_json snap) in
  check_bool "json has the counter" true
    (contains ~affix:"\"bfs.calls\":1" json)

let test_metrics_codec_roundtrip () =
  (* to_json drops zero counters; of_json re-expands them over the
     registry, so snapshots restore exactly — the property store-cached
     sweep cells rely on. *)
  let (), snap =
    Metrics.collect (fun () ->
        Metrics.incr Metrics.bfs_calls;
        Metrics.add Metrics.dynamics_moves 7)
  in
  check_bool "snapshot round-trips" true (Metrics.of_json (Metrics.to_json snap) = Ok snap);
  check_bool "empty snapshot round-trips" true
    (let (), z = Metrics.collect (fun () -> ()) in
     Metrics.of_json (Metrics.to_json z) = Ok z);
  check_bool "non-object rejected" true
    (match Metrics.of_json (Json.List []) with Error _ -> true | Ok _ -> false)

(* --- Span ---------------------------------------------------------------- *)

let test_span_noop_outside_trace () =
  check_bool "inactive" false (Span.active ());
  check_int "with_span is transparent" 7 (Span.with_span "s" (fun () -> 7))

let test_trace_tree () =
  let result, root =
    Span.trace "root" (fun () ->
        check_bool "active inside" true (Span.active ());
        let a = Span.with_span "a" (fun () -> 1) in
        let b =
          Span.with_span "b" (fun () -> Span.with_span "b.1" (fun () -> 2))
        in
        a + b)
  in
  check_int "result" 3 result;
  check_string "root name" "root" root.Span.span_name;
  check_int "two children" 2 (List.length root.Span.children);
  check_string "order preserved" "a" (List.nth root.Span.children 0).Span.span_name;
  check_int "span count" 4 (Span.count root);
  check_bool "find nested" true (Span.find root "b.1" <> None);
  check_bool "find missing" true (Span.find root "zzz" = None);
  check_bool "durations non-negative" true
    (root.Span.elapsed_ns >= 0L
    && List.for_all (fun c -> c.Span.elapsed_ns >= 0L) root.Span.children);
  check_bool "inactive after" false (Span.active ())

let test_trace_exception_restores () =
  (try
     ignore (Span.trace "boom" (fun () -> raise Exit));
     Alcotest.fail "expected Exit"
   with Exit -> ());
  check_bool "inactive after raise" false (Span.active ());
  (* A failing child is dropped; the trace itself survives. *)
  let (), root =
    Span.trace "root" (fun () ->
        try Span.with_span "bad" (fun () -> raise Exit) with Exit -> ())
  in
  check_int "failed span dropped" 0 (List.length root.Span.children)

let test_span_export () =
  let (), root = Span.trace "r" (fun () -> Span.with_span "c" (fun () -> ())) in
  let json = Json.to_string (Span.to_json root) in
  check_bool "json mentions child" true (contains ~affix:{|"name":"c"|} json);
  let md = Span.to_markdown root in
  check_bool "markdown indents child" true
    (contains ~affix:"\n  - c:" md)

let test_span_exact_codec () =
  let (), root =
    Span.trace "r" (fun () ->
        Span.with_span "a" (fun () -> Span.with_span "a.1" (fun () -> ()));
        Span.with_span "b" (fun () -> ()))
  in
  check_bool "tree round-trips with timings" true
    (Span.of_json_exact (Span.to_json_exact root) = Ok root);
  check_bool "plain to_json is lossy (no started_ns) and is rejected" true
    (match Span.of_json_exact (Span.to_json root) with
    | Error _ -> true
    | Ok _ -> false)

(* --- Json.of_string ------------------------------------------------------ *)

let parse_ok s =
  match Json.of_string s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let test_parse_scalars () =
  check_bool "null" true (parse_ok "null" = Json.Null);
  check_bool "true" true (parse_ok " true " = Json.Bool true);
  check_bool "int" true (parse_ok "-42" = Json.Int (-42));
  check_bool "float" true (parse_ok "1.5" = Json.Float 1.5);
  check_bool "exponent is float" true (parse_ok "2e3" = Json.Float 2000.0);
  check_bool "string" true (parse_ok {|"hi"|} = Json.String "hi")

let test_parse_structures () =
  check_bool "list" true (parse_ok "[1, 2]" = Json.List [ Json.Int 1; Json.Int 2 ]);
  check_bool "empty obj" true (parse_ok " {} " = Json.Obj []);
  check_bool "nested" true
    (parse_ok {|{"a":[true,null],"b":{"c":1}}|}
    = Json.Obj
        [
          ("a", Json.List [ Json.Bool true; Json.Null ]);
          ("b", Json.Obj [ ("c", Json.Int 1) ]);
        ])

let test_parse_escapes () =
  check_bool "simple escapes" true
    (parse_ok {|"a\"b\\c\nd\te"|} = Json.String "a\"b\\c\nd\te");
  check_bool "u escape" true (parse_ok {|"\u0041"|} = Json.String "A");
  check_bool "u escape control" true (parse_ok {|"\u0001"|} = Json.String "\x01");
  check_bool "2-byte utf8" true (parse_ok {|"\u00e9"|} = Json.String "\xc3\xa9");
  check_bool "raw non-ascii bytes pass through" true
    (parse_ok "\"\xc3\xa9\"" = Json.String "\xc3\xa9");
  check_bool "surrogate pair" true
    (parse_ok {|"\ud83d\ude00"|} = Json.String "\xf0\x9f\x98\x80")

let test_parse_errors () =
  let fails s = match Json.of_string s with Ok _ -> false | Error _ -> true in
  check_bool "empty" true (fails "");
  check_bool "garbage" true (fails "flase");
  check_bool "trailing" true (fails "1 2");
  check_bool "unterminated string" true (fails {|"abc|});
  check_bool "raw control char" true (fails "\"a\x01b\"");
  check_bool "lone surrogate" true (fails {|"\ud83d"|});
  check_bool "unclosed list" true (fails "[1,")

(* Any byte string survives emit -> parse: quotes, backslashes, control
   chars (escaped as \u00XX) and non-ASCII bytes (passed through raw). *)
let prop_string_roundtrip =
  QCheck.Test.make ~name:"emitted strings round-trip through of_string"
    ~count:1000
    QCheck.(string_gen Gen.(map Char.chr (int_range 0 255)))
    (fun s -> Json.of_string (Json.to_string (Json.String s)) = Ok (Json.String s))

(* Whole documents round-trip too (floats kept finite and away from the
   int/float rendering ambiguity by construction). *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float (Float.of_int f +. 0.5)) (int_range (-1000) 1000);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then scalar
          else
            frequency
              [
                (2, scalar);
                (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2))));
                ( 1,
                  map
                    (fun kvs ->
                      (* Object keys must be unique for equality to hold. *)
                      Json.Obj
                        (List.mapi (fun i (k, v) -> (Printf.sprintf "%d%s" i k, v)) kvs)
                      )
                    (list_size (int_range 0 4)
                       (pair (string_size ~gen:printable (int_range 0 6)) (self (n / 2))))
                );
              ])
        (min n 6))

let prop_json_roundtrip =
  QCheck.Test.make ~name:"documents round-trip through of_string" ~count:500
    (QCheck.make ~print:(fun v -> Json.to_string v) json_gen)
    (fun v ->
      Json.of_string (Json.to_string v) = Ok v
      && Json.of_string (Json.to_string_pretty v) = Ok v)

(* of_string is total: any byte string — valid, garbage, or binary — comes
   back as Ok or Error, never an exception. The store treats a parse
   failure as a cache miss, so an exception here would crash a resume on
   a half-written record instead of recomputing the cell. *)
let never_raises s =
  match Json.of_string s with Ok _ -> true | Error _ -> true | exception _ -> false

let prop_of_string_never_raises =
  QCheck.Test.make ~name:"of_string never raises on arbitrary bytes" ~count:2000
    QCheck.(string_gen Gen.(map Char.chr (int_range 0 255)))
    never_raises

(* Truncations of well-formed documents are the shapes a torn record log
   tail actually produces. *)
let prop_of_string_never_raises_truncated =
  QCheck.Test.make ~name:"of_string never raises on truncated documents"
    ~count:500
    QCheck.(
      pair (make ~print:(fun v -> Json.to_string v) json_gen) (int_range 0 1000))
    (fun (v, cut) ->
      let s = Json.to_string v in
      never_raises (String.sub s 0 (min cut (String.length s))))

(* --- Histogram ----------------------------------------------------------- *)

let us = 1_000L (* 1µs in ns *)

let test_hist_noop_without_collector () =
  check_bool "not recording" false (Histogram.recording ());
  Histogram.record_ns Histogram.best_response 5_000L;
  check_int "time is transparent" 9 (Histogram.(time set_cover) (fun () -> 9));
  check_bool "still not recording" false (Histogram.recording ())

let test_hist_buckets () =
  check_int "zero in underflow" 0 (Histogram.bucket_of_ns 0L);
  check_int "99ns in underflow" 0 (Histogram.bucket_of_ns 99L);
  check_bool "100ns leaves underflow" true (Histogram.bucket_of_ns 100L > 0);
  let b = Histogram.boundaries in
  check_bool "boundaries strictly increase" true
    (Array.for_all2 (fun x y -> Int64.compare x y < 0)
       (Array.sub b 0 (Array.length b - 1))
       (Array.sub b 1 (Array.length b - 1)));
  (* ~2 buckets per octave: doubling a duration moves up exactly 2. *)
  check_int "sqrt2 spacing" (Histogram.bucket_of_ns 3_200L)
    (Histogram.bucket_of_ns 1_600L + 2);
  check_bool "monotonic" true
    (Histogram.bucket_of_ns 1_000_000L <= Histogram.bucket_of_ns 1_000_001L);
  check_int "huge in overflow" (Histogram.bucket_count - 1)
    (Histogram.bucket_of_ns Int64.max_int)

let test_hist_collect_and_percentiles () =
  let (), snap =
    Histogram.collect (fun () ->
        for _ = 1 to 99 do
          Histogram.record_ns Histogram.best_response us
        done;
        Histogram.record_ns Histogram.best_response (Int64.mul 1_000L us))
  in
  let h = List.assoc (Histogram.name Histogram.best_response) snap in
  check_int "count" 100 (Histogram.count h);
  check_bool "max is the outlier" true (Histogram.max_ns h = Int64.mul 1_000L us);
  check_bool "sum at least 199us" true (Histogram.sum_ns h >= Int64.mul 199L us);
  (* Bucketed percentiles are conservative within one sqrt(2) bucket. *)
  let p50 = Histogram.p50_ns h and p99 = Histogram.p99_ns h in
  check_bool "p50 covers 1us" true (p50 >= 1_000. && p50 <= 1_500.);
  check_bool "p99 still in the bulk" true (p99 >= 1_000. && p99 <= 1_500.);
  check_bool "p100 is the outlier bucket" true
    (Histogram.percentile_ns h 1.0 >= 1_000_000.);
  check_bool "empty percentile is nan" true
    (Float.is_nan (Histogram.p50_ns Histogram.empty_hist));
  check_bool "mean between the modes" true
    (Histogram.mean_ns h > 1_000. && Histogram.mean_ns h < 1_000_000.)

let test_hist_time_and_nesting () =
  let ((), inner), outer =
    Histogram.collect (fun () ->
        Histogram.(time set_cover) (fun () ->
            Histogram.collect (fun () ->
                Histogram.(time set_cover) (fun () -> ());
                Histogram.(time best_response) (fun () -> ()))))
  in
  let count name snap = Histogram.count (List.assoc name snap) in
  check_int "inner set_cover" 1 (count "set_cover.solve.latency" inner);
  check_int "inner best_response" 1 (count "best_response.latency" inner);
  (* Outer sees its own sample plus the folded inner ones. *)
  check_int "outer set_cover" 2 (count "set_cover.solve.latency" outer);
  check_int "outer best_response" 1 (count "best_response.latency" outer);
  check_bool "collector uninstalled" false (Histogram.recording ())

let test_hist_merge_total () =
  let snap n v =
    snd
      (Histogram.collect (fun () ->
           for _ = 1 to n do
             Histogram.record_ns Histogram.dynamics_round v
           done))
  in
  let a = snap 2 us and b = snap 3 (Int64.mul 8L us) in
  let m = Histogram.merge a b in
  let h = List.assoc "dynamics.round.latency" m in
  check_int "merged count" 5 (Histogram.count h);
  check_bool "merged max" true (Histogram.max_ns h = Int64.mul 8L us);
  let t = Histogram.total [ a; b; a ] in
  check_int "total count" 7 (Histogram.count (List.assoc "dynamics.round.latency" t));
  check_int "total of none is empty" 0 (List.length (Histogram.total []));
  check_bool "counts_only lists every histogram" true
    (List.mem ("dynamics.round.latency", 5) (Histogram.counts_only m)
    && List.mem ("best_response.latency", 0) (Histogram.counts_only m))

let test_hist_exception_safety () =
  (try
     ignore (Histogram.collect (fun () -> raise Exit));
     Alcotest.fail "expected Exit"
   with Exit -> ());
  check_bool "collector uninstalled after raise" false (Histogram.recording ())

let test_hist_export () =
  let (), snap =
    Histogram.collect (fun () ->
        Histogram.record_ns Histogram.sweep_cell (Int64.mul 2_000L us))
  in
  let json = Json.to_string (Histogram.to_json snap) in
  check_bool "json parses" true (Json.of_string json = Ok (Histogram.to_json snap));
  check_bool "json has the histogram" true
    (contains ~affix:"\"experiment.sweep_cell.latency\"" json);
  check_bool "zero-sample histograms dropped from json" false
    (contains ~affix:"best_response.latency" json);
  check_bool "markdown has a row" true
    (contains ~affix:"experiment.sweep_cell.latency" (Histogram.to_markdown snap));
  check_string "pp_ns ms" "2.00ms" (Histogram.pp_ns 2.0e6);
  check_string "pp_ns nan" "-" (Histogram.pp_ns nan)

let test_hist_exact_codec () =
  let (), snap =
    Histogram.collect (fun () ->
        Histogram.record_ns Histogram.best_response 1_500L;
        Histogram.record_ns Histogram.best_response 3_000_000L;
        Histogram.record_ns Histogram.sweep_cell 42L)
  in
  check_bool "snapshot round-trips including empty histograms" true
    (Histogram.of_json_exact (Histogram.to_json_exact snap) = Ok snap);
  (* A bucket-scheme change must invalidate, not misread. *)
  let truncated =
    match Histogram.to_json_exact snap with
    | Json.Obj ((name, Json.Obj fields) :: rest) ->
        let fields =
          List.map
            (function
              | "counts", Json.List (_ :: tl) -> ("counts", Json.List tl)
              | kv -> kv)
            fields
        in
        Json.Obj ((name, Json.Obj fields) :: rest)
    | _ -> Alcotest.fail "unexpected exact-export shape"
  in
  check_bool "wrong bucket count rejected" true
    (match Histogram.of_json_exact truncated with Error _ -> true | Ok _ -> false)

(* --- Gc_stats ------------------------------------------------------------ *)

let test_gc_measure () =
  let xs, d = Gc_stats.measure (fun () -> List.init 10_000 (fun i -> (i, i))) in
  check_int "work happened" 10_000 (List.length xs);
  check_bool "allocated counted" true (Gc_stats.allocated_words d > 10_000.0);
  check_bool "minor nonneg" true (d.Gc_stats.minor_words >= 0.0)

let test_gc_arithmetic () =
  let a =
    {
      Gc_stats.minor_words = 10.0;
      promoted_words = 4.0;
      major_words = 6.0;
      minor_collections = 1;
      major_collections = 0;
      compactions = 0;
    }
  in
  let sum = Gc_stats.add a a in
  check_bool "add doubles" true (sum.Gc_stats.minor_words = 20.0);
  check_bool "allocated = minor + major - promoted" true
    (Gc_stats.allocated_words a = 12.0);
  check_bool "diff inverts add" true (Gc_stats.diff ~before:a ~after:sum = a);
  check_bool "total" true
    ((Gc_stats.total [ a; a; a ]).Gc_stats.minor_collections = 3);
  check_bool "zero is neutral" true (Gc_stats.add a Gc_stats.zero = a);
  let json = Json.to_string (Gc_stats.to_json a) in
  check_bool "json parses" true (Result.is_ok (Json.of_string json));
  check_bool "json leads with allocated_words" true
    (contains ~affix:{|{"allocated_words":12.0|} json);
  (* The codec restores the raw fields (allocated_words is derived). *)
  check_bool "snapshot round-trips" true (Gc_stats.of_json (Gc_stats.to_json a) = Ok a);
  check_bool "non-object rejected" true
    (match Gc_stats.of_json Json.Null with Error _ -> true | Ok _ -> false)

(* --- Chrome_trace -------------------------------------------------------- *)

(* B/E events must balance like brackets per track, with matching names. *)
let check_be_nesting events =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | Json.Obj fields -> (
          let str k = match List.assoc_opt k fields with
            | Some (Json.String s) -> s
            | _ -> ""
          in
          let tid =
            match List.assoc_opt "tid" fields with
            | Some (Json.Int t) -> t
            | _ -> -1
          in
          let stack = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
          match str "ph" with
          | "B" -> Hashtbl.replace stacks tid (str "name" :: stack)
          | "E" -> (
              match stack with
              | top :: rest ->
                  check_string "E matches innermost B" top (str "name");
                  Hashtbl.replace stacks tid rest
              | [] -> Alcotest.fail "E without matching B")
          | _ -> ())
      | _ -> Alcotest.fail "event is not an object")
    events;
  (Hashtbl.iter [@lint.allow "D3" "order-independent check: fails iff any stack is non-empty"])
    (fun tid stack ->
      if stack <> [] then Alcotest.failf "unclosed B events on tid %d" tid)
    stacks

let test_chrome_trace () =
  let (), root =
    Span.trace "cell" (fun () ->
        Span.with_span "trial 0" (fun () ->
            Span.with_span "dynamics.run" (fun () -> ()));
        Span.with_span "trial 1" (fun () -> ()))
  in
  let trace = Chrome_trace.create ~process_name:"test" () in
  Chrome_trace.set_thread_name trace ~tid:7 "worker";
  Chrome_trace.add_span_tree trace ~tid:7 root;
  Chrome_trace.add_span_tree trace ~tid:3 root;
  Chrome_trace.add_counter trace ~tid:7 ~ts_ns:123_000L ~name:"gc"
    [ ("words", 42.0) ];
  Chrome_trace.add_complete trace ~tid:7 ~name:"flat" ~start_ns:1_000L
    ~dur_ns:2_000L ();
  (* Serialized form parses back and is structurally sound. *)
  let json = Chrome_trace.to_json trace in
  check_bool "serialization parses" true
    (Json.of_string (Json.to_string json) = Ok json);
  let events =
    match json with
    | Json.Obj fields -> (
        match List.assoc "traceEvents" fields with
        | Json.List evs -> evs
        | _ -> Alcotest.fail "traceEvents is not a list")
    | _ -> Alcotest.fail "trace is not an object"
  in
  check_int "event_count matches serialization" (List.length events)
    (Chrome_trace.event_count trace);
  check_be_nesting events;
  let has ph =
    List.exists
      (function
        | Json.Obj fields -> List.assoc_opt "ph" fields = Some (Json.String ph)
        | _ -> false)
      events
  in
  check_bool "has metadata" true (has "M");
  check_bool "has begin" true (has "B");
  check_bool "has counter" true (has "C");
  check_bool "has complete" true (has "X");
  (* 4 spans x 2 tracks = 8 B and 8 E events. *)
  let count ph =
    List.length
      (List.filter
         (function
           | Json.Obj fields -> List.assoc_opt "ph" fields = Some (Json.String ph)
           | _ -> false)
         events)
  in
  check_int "8 begins" 8 (count "B");
  check_int "8 ends" 8 (count "E");
  (* tid 7 was named explicitly, tid 3 auto-named. *)
  let thread_names =
    List.filter_map
      (function
        | Json.Obj fields
          when List.assoc_opt "name" fields = Some (Json.String "thread_name") -> (
            match List.assoc_opt "args" fields with
            | Some (Json.Obj [ ("name", Json.String n) ]) -> Some n
            | _ -> None)
        | _ -> None)
      events
  in
  check_bool "explicit name kept" true (List.mem "worker" thread_names);
  check_bool "auto name for other tid" true (List.mem "domain 3" thread_names)

(* --- Events -------------------------------------------------------------- *)

let test_events_sink () =
  check_bool "inactive by default" false (Events.active ());
  Events.emit "ignored" [];
  let path = Filename.temp_file "ncg_events" ".jsonl" in
  Events.with_file path (fun () ->
      check_bool "active inside" true (Events.active ());
      Events.emit "alpha" [ ("x", Json.Int 1) ];
      Events.emit ~severity:Events.Warn "beta" [ ("s", Json.String "q\"z") ]);
  check_bool "inactive after" false (Events.active ());
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check_int "two lines" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok (Json.Obj fields) ->
          let keys = List.map fst fields in
          (* Envelope first, in order, then the payload. *)
          check_bool "envelope prefix" true
            (match keys with
            | "ts_ns" :: "severity" :: "domain" :: "event" :: _ -> true
            | _ -> false)
      | Ok _ -> Alcotest.fail "event line is not an object"
      | Error msg -> Alcotest.failf "event line does not parse: %s" msg)
    lines;
  (match Json.of_string (List.nth lines 1) with
  | Ok (Json.Obj fields) ->
      check_bool "severity recorded" true
        (List.assoc "severity" fields = Json.String "warn");
      check_bool "payload recorded" true
        (List.assoc "s" fields = Json.String "q\"z")
  | _ -> Alcotest.fail "unreachable");
  Sys.remove path

let test_events_progress_toggle () =
  (* Forced off: progress must be inert (we cannot assert TTY rendering
     in a test harness, but the toggle and the no-op path must work). *)
  Events.set_progress false;
  check_bool "disabled" false (Events.progress_enabled ());
  Events.progress "should not appear";
  Events.progress_done ();
  Events.set_progress true;
  check_bool "forced on" true (Events.progress_enabled ());
  Events.set_progress false

(* --- Timeseries ----------------------------------------------------------- *)

module Timeseries = Ncg_obs.Timeseries
module Probe = Ncg_obs.Probe

let ts_of ?capacity ys =
  let t = Timeseries.create ?capacity () in
  List.iteri (fun i y -> Timeseries.push t ~x:(float_of_int i) y) ys;
  t

let test_ts_basic () =
  let t = Timeseries.create ~capacity:4 () in
  check_bool "empty" true (Timeseries.is_empty t);
  Timeseries.push t ~x:0. 10.;
  Timeseries.push t ~x:1. 11.;
  check_int "length" 2 (Timeseries.length t);
  check_int "stride 1 before overflow" 1 (Timeseries.stride t);
  check_bool "last" true (Timeseries.last t = Some (1., 11.));
  Timeseries.push t ~x:2. 12.;
  Timeseries.push t ~x:3. 13.;
  Timeseries.push t ~x:4. 14.;
  check_bool "bounded" true (Timeseries.length t <= 4);
  check_int "pushed counts everything" 5 (Timeseries.pushed t);
  check_bool "stride doubled" true (Timeseries.stride t > 1);
  (* The decimation invariant: retained sample i is push index i*stride. *)
  List.iteri
    (fun i (x, _) ->
      check_bool "x = i * stride" true
        (x = float_of_int (i * Timeseries.stride t)))
    (Timeseries.to_list t);
  Alcotest.check_raises "capacity < 2 rejected"
    (Invalid_argument "Timeseries.create: capacity must be >= 2") (fun () ->
      ignore (Timeseries.create ~capacity:1 ()))

let ts_capacity_and_ys_gen =
  QCheck.(pair (int_range 2 17) (list_of_size Gen.(int_range 0 120) float))

let prop_ts_capacity_bound =
  QCheck.Test.make ~name:"length <= capacity after every push" ~count:300
    ts_capacity_and_ys_gen (fun (capacity, ys) ->
      let t = Timeseries.create ~capacity () in
      List.for_all
        (fun y ->
          Timeseries.push t ~x:(float_of_int (Timeseries.pushed t)) y;
          Timeseries.length t <= capacity)
        ys)

let prop_ts_deterministic =
  QCheck.Test.make ~name:"downsampling is deterministic" ~count:200
    ts_capacity_and_ys_gen (fun (capacity, ys) ->
      Timeseries.equal (ts_of ~capacity ys) (ts_of ~capacity ys))

let prop_ts_order_preserving =
  QCheck.Test.make
    ~name:"retained samples are an ordered subsequence of the pushes" ~count:200
    ts_capacity_and_ys_gen (fun (capacity, ys) ->
      let t = ts_of ~capacity ys in
      let xs = List.map fst (Timeseries.to_list t) in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      let stride = float_of_int (Timeseries.stride t) in
      increasing xs
      && List.for_all
           (fun x -> Float.rem x stride = 0. && x < float_of_int (List.length ys))
           xs)

let ts_weird_gen =
  let open QCheck.Gen in
  let y =
    frequency
      [
        (8, float);
        (1, return nan);
        (1, return infinity);
        (1, return neg_infinity);
      ]
  in
  pair (int_range 2 9) (list_size (int_range 0 50) y)

let prop_ts_codec_roundtrip =
  QCheck.Test.make ~name:"JSON codec round-trips exactly (NaN-safe)" ~count:300
    (QCheck.make
       ~print:(fun (cap, ys) ->
         Printf.sprintf "capacity=%d ys=[%s]" cap
           (String.concat "; " (List.map (Printf.sprintf "%h") ys)))
       ts_weird_gen)
    (fun (capacity, ys) ->
      let t = ts_of ~capacity ys in
      match Timeseries.of_json (Timeseries.to_json t) with
      | Ok t' -> Timeseries.equal t t'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

(* --- Probe ---------------------------------------------------------------- *)

let test_probe_registry () =
  let names = Probe.names () in
  check_bool "built-ins registered" true
    (List.mem "dynamics.social_cost" names && List.mem "solver.bb_cutoffs" names);
  check_string "name" "dynamics.social_cost" (Probe.name Probe.social_cost);
  check_bool "find" true (Probe.find "dynamics.social_cost" = Some Probe.social_cost);
  (* Computed name, so the O1 closed-namespace lint cannot (and must not)
     flag this negative lookup. *)
  check_bool "find unknown" true (Probe.find ("dynamics." ^ "nope") = None)

let test_probe_collect () =
  check_bool "not recording outside" false (Probe.recording ());
  Probe.sample Probe.social_cost ~x:0. 1.0;
  (* no-op, not a crash *)
  let (), snap =
    Probe.collect (fun () ->
        check_bool "recording inside" true (Probe.recording ());
        Probe.sample Probe.social_cost ~x:1. 42.;
        Probe.sample Probe.social_cost ~x:2. 41.;
        Probe.sample Probe.awake_players ~x:1. 3.)
  in
  check_bool "recording off after" false (Probe.recording ());
  check_int "snapshot covers the whole registry"
    (List.length (Probe.names ()))
    (List.length snap);
  check_int "two social-cost samples" 2
    (Timeseries.length (List.assoc "dynamics.social_cost" snap));
  check_int "one awake sample" 1
    (Timeseries.length (List.assoc "dynamics.awake_players" snap));
  check_bool "unsampled probes are empty series" true
    (Timeseries.is_empty (List.assoc "solver.bb_cutoffs" snap));
  check_bool "snapshot codec round-trips" true
    (match Probe.of_json (Probe.to_json snap) with
    | Ok s -> Probe.equal_snapshot snap s
    | Error _ -> false);
  check_bool "empty snapshot codec round-trips" true
    (match Probe.of_json (Probe.to_json (Probe.empty_snapshot ())) with
    | Ok s -> Probe.equal_snapshot (Probe.empty_snapshot ()) s
    | Error _ -> false)

let test_probe_nesting_shadows () =
  let (((), inner), outer) =
    Probe.collect (fun () ->
        Probe.sample Probe.social_cost ~x:0. 5.;
        Probe.collect (fun () -> Probe.sample Probe.social_cost ~x:0. 7.))
  in
  let sc snap = Timeseries.to_list (List.assoc "dynamics.social_cost" snap) in
  check_bool "inner saw only its own sample" true (sc inner = [ (0., 7.) ]);
  (* Series do not merge on exit: the outer collector keeps exactly what
     it recorded itself. *)
  check_bool "outer unchanged by inner" true (sc outer = [ (0., 5.) ])

let test_probe_lazy () =
  let evaluated = ref false in
  Probe.sample_lazy Probe.social_cost ~x:0. (fun () ->
      evaluated := true;
      1.0);
  check_bool "lazy thunk skipped without a collector" false !evaluated;
  let (), snap =
    Probe.collect (fun () ->
        Probe.sample_lazy Probe.social_cost ~x:0. (fun () ->
            evaluated := true;
            9.0))
  in
  check_bool "lazy thunk ran under a collector" true !evaluated;
  check_bool "and recorded" true
    (Timeseries.to_list (List.assoc "dynamics.social_cost" snap) = [ (0., 9.0) ])

let test_progress_auto_suppression () =
  (* Under the test runner stderr is a pipe, so the TTY autodetection
     must have left the live progress line disabled from process start.
     (Guarded: a human running the binary on a real terminal is exempt.) *)
  if not (Unix.isatty Unix.stderr) then
    check_bool "auto-suppressed when stderr is not a TTY" false
      (Events.progress_enabled ())

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "structures" `Quick test_json_structures;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "no-op without collector" `Quick
            test_counters_noop_without_collector;
          Alcotest.test_case "collect" `Quick test_collect_basic;
          Alcotest.test_case "nesting accumulates" `Quick test_collect_nests;
          Alcotest.test_case "exception safety" `Quick
            test_collect_restores_on_exception;
          Alcotest.test_case "register idempotent" `Quick test_register_idempotent;
          Alcotest.test_case "merge/total" `Quick test_merge_and_total;
          Alcotest.test_case "instrumented code counts" `Quick
            test_instrumented_code_counts;
          Alcotest.test_case "exact codec round-trip" `Quick
            test_metrics_codec_roundtrip;
        ] );
      ( "span",
        [
          Alcotest.test_case "no-op outside trace" `Quick test_span_noop_outside_trace;
          Alcotest.test_case "tree shape" `Quick test_trace_tree;
          Alcotest.test_case "exception safety" `Quick test_trace_exception_restores;
          Alcotest.test_case "export" `Quick test_span_export;
          Alcotest.test_case "exact codec round-trip" `Quick test_span_exact_codec;
        ] );
      ( "json parser",
        [
          Alcotest.test_case "scalars" `Quick test_parse_scalars;
          Alcotest.test_case "structures" `Quick test_parse_structures;
          Alcotest.test_case "escapes" `Quick test_parse_escapes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          QCheck_alcotest.to_alcotest prop_string_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_of_string_never_raises;
          QCheck_alcotest.to_alcotest prop_of_string_never_raises_truncated;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "no-op without collector" `Quick
            test_hist_noop_without_collector;
          Alcotest.test_case "bucket scheme" `Quick test_hist_buckets;
          Alcotest.test_case "collect and percentiles" `Quick
            test_hist_collect_and_percentiles;
          Alcotest.test_case "time and nesting" `Quick test_hist_time_and_nesting;
          Alcotest.test_case "merge/total" `Quick test_hist_merge_total;
          Alcotest.test_case "exception safety" `Quick test_hist_exception_safety;
          Alcotest.test_case "export" `Quick test_hist_export;
          Alcotest.test_case "exact codec round-trip" `Quick test_hist_exact_codec;
        ] );
      ( "gc_stats",
        [
          Alcotest.test_case "measure" `Quick test_gc_measure;
          Alcotest.test_case "arithmetic and export" `Quick test_gc_arithmetic;
        ] );
      ( "chrome_trace",
        [ Alcotest.test_case "structure and nesting" `Quick test_chrome_trace ] );
      ( "events",
        [
          Alcotest.test_case "jsonl sink" `Quick test_events_sink;
          Alcotest.test_case "progress auto-suppression" `Quick
            test_progress_auto_suppression;
          Alcotest.test_case "progress toggle" `Quick test_events_progress_toggle;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "push / decimate / invariants" `Quick test_ts_basic;
          QCheck_alcotest.to_alcotest prop_ts_capacity_bound;
          QCheck_alcotest.to_alcotest prop_ts_deterministic;
          QCheck_alcotest.to_alcotest prop_ts_order_preserving;
          QCheck_alcotest.to_alcotest prop_ts_codec_roundtrip;
        ] );
      ( "probe",
        [
          Alcotest.test_case "registry" `Quick test_probe_registry;
          Alcotest.test_case "collect + codec" `Quick test_probe_collect;
          Alcotest.test_case "nesting shadows" `Quick test_probe_nesting_shadows;
          Alcotest.test_case "lazy sampling" `Quick test_probe_lazy;
        ] );
    ]
