(* Tests for the observability library: JSON emitter, counters, spans. *)

module Json = Ncg_obs.Json
module Metrics = Ncg_obs.Metrics
module Span = Ncg_obs.Span

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec at i = i + m <= n && (String.sub s i m = affix || at (i + 1)) in
  at 0

(* --- Json ---------------------------------------------------------------- *)

let test_json_scalars () =
  check_string "null" "null" (Json.to_string Json.Null);
  check_string "true" "true" (Json.to_string (Json.Bool true));
  check_string "int" "-42" (Json.to_string (Json.Int (-42)));
  check_string "float" "1.5" (Json.to_string (Json.Float 1.5));
  check_string "float int-valued gets a dot" "2.0" (Json.to_string (Json.Float 2.0));
  check_string "nan is null" "null" (Json.to_string (Json.Float nan));
  check_string "inf is null" "null" (Json.to_string (Json.Float infinity))

let test_json_escaping () =
  check_string "quotes and backslash" {|"a\"b\\c"|}
    (Json.to_string (Json.String {|a"b\c|}));
  check_string "newline" {|"a\nb"|} (Json.to_string (Json.String "a\nb"));
  check_string "control char" "\"\\u0001\"" (Json.to_string (Json.String "\x01"))

let test_json_structures () =
  check_string "list" "[1,2]" (Json.to_string (Json.List [ Json.Int 1; Json.Int 2 ]));
  check_string "empty obj" "{}" (Json.to_string (Json.Obj []));
  check_string "obj"
    {|{"a":1,"b":[true]}|}
    (Json.to_string
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true ]) ]));
  (* Pretty form parses back to the same compact content modulo whitespace. *)
  let v = Json.Obj [ ("xs", Json.List [ Json.Int 1 ]); ("s", Json.String "q") ] in
  let strip s =
    String.concat ""
      (String.split_on_char '\n'
         (String.concat "" (String.split_on_char ' ' s)))
  in
  check_string "pretty == compact modulo layout" (Json.to_string v)
    (strip (Json.to_string_pretty v))

(* --- Metrics ------------------------------------------------------------- *)

let test_counters_noop_without_collector () =
  check_bool "not recording" false (Metrics.recording ());
  (* Must be a no-op, not a crash. *)
  Metrics.incr Metrics.bfs_calls;
  Metrics.add Metrics.set_cover_nodes 5;
  check_bool "still not recording" false (Metrics.recording ())

let test_collect_basic () =
  let (), snap =
    Metrics.collect (fun () ->
        check_bool "recording inside" true (Metrics.recording ());
        Metrics.incr Metrics.bfs_calls;
        Metrics.incr Metrics.bfs_calls;
        Metrics.add Metrics.dynamics_moves 3)
  in
  check_int "bfs twice" 2 (List.assoc "bfs.calls" snap);
  check_int "moves" 3 (List.assoc "dynamics.moves" snap);
  check_int "untouched is zero" 0 (List.assoc "dynamics.rounds" snap);
  check_bool "recording off after" false (Metrics.recording ())

let test_collect_nests () =
  let (inner_snap, ()), outer_snap =
    Metrics.collect (fun () ->
        Metrics.incr Metrics.bfs_calls;
        let inner =
          Metrics.collect (fun () ->
              Metrics.incr Metrics.bfs_calls;
              Metrics.incr Metrics.bfs_calls)
        in
        (snd inner, ()))
  in
  check_int "inner sees its own" 2 (List.assoc "bfs.calls" inner_snap);
  check_int "outer accumulates inner" 3 (List.assoc "bfs.calls" outer_snap)

let test_collect_restores_on_exception () =
  (try
     ignore (Metrics.collect (fun () -> raise Exit));
     Alcotest.fail "expected Exit"
   with Exit -> ());
  check_bool "collector uninstalled after raise" false (Metrics.recording ())

let test_register_idempotent () =
  let a = Metrics.register "test.some_counter" in
  let b = Metrics.register "test.some_counter" in
  check_bool "same slot" true (a == b || Metrics.name a = Metrics.name b);
  check_string "name round-trips" "test.some_counter" (Metrics.name a)

let test_merge_and_total () =
  let a = [ ("x", 1); ("y", 2) ] and b = [ ("y", 40); ("z", 5) ] in
  let m = Metrics.merge a b in
  check_int "x" 1 (List.assoc "x" m);
  check_int "y summed" 42 (List.assoc "y" m);
  check_int "z" 5 (List.assoc "z" m);
  check_int "total of none is empty" 0 (List.length (Metrics.total []));
  let t = Metrics.total [ a; b; a ] in
  check_int "total y" 44 (List.assoc "y" t)

let test_instrumented_code_counts () =
  let g = Ncg_gen.Classic.path 6 in
  let (), snap = Metrics.collect (fun () -> ignore (Ncg_graph.Bfs.distances g 0)) in
  check_int "one bfs" 1 (List.assoc "bfs.calls" snap);
  let json = Json.to_string (Metrics.to_json snap) in
  check_bool "json has the counter" true
    (contains ~affix:"\"bfs.calls\":1" json)

(* --- Span ---------------------------------------------------------------- *)

let test_span_noop_outside_trace () =
  check_bool "inactive" false (Span.active ());
  check_int "with_span is transparent" 7 (Span.with_span "s" (fun () -> 7))

let test_trace_tree () =
  let result, root =
    Span.trace "root" (fun () ->
        check_bool "active inside" true (Span.active ());
        let a = Span.with_span "a" (fun () -> 1) in
        let b =
          Span.with_span "b" (fun () -> Span.with_span "b.1" (fun () -> 2))
        in
        a + b)
  in
  check_int "result" 3 result;
  check_string "root name" "root" root.Span.span_name;
  check_int "two children" 2 (List.length root.Span.children);
  check_string "order preserved" "a" (List.nth root.Span.children 0).Span.span_name;
  check_int "span count" 4 (Span.count root);
  check_bool "find nested" true (Span.find root "b.1" <> None);
  check_bool "find missing" true (Span.find root "zzz" = None);
  check_bool "durations non-negative" true
    (root.Span.elapsed_ns >= 0L
    && List.for_all (fun c -> c.Span.elapsed_ns >= 0L) root.Span.children);
  check_bool "inactive after" false (Span.active ())

let test_trace_exception_restores () =
  (try
     ignore (Span.trace "boom" (fun () -> raise Exit));
     Alcotest.fail "expected Exit"
   with Exit -> ());
  check_bool "inactive after raise" false (Span.active ());
  (* A failing child is dropped; the trace itself survives. *)
  let (), root =
    Span.trace "root" (fun () ->
        try Span.with_span "bad" (fun () -> raise Exit) with Exit -> ())
  in
  check_int "failed span dropped" 0 (List.length root.Span.children)

let test_span_export () =
  let (), root = Span.trace "r" (fun () -> Span.with_span "c" (fun () -> ())) in
  let json = Json.to_string (Span.to_json root) in
  check_bool "json mentions child" true (contains ~affix:{|"name":"c"|} json);
  let md = Span.to_markdown root in
  check_bool "markdown indents child" true
    (contains ~affix:"\n  - c:" md)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "structures" `Quick test_json_structures;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "no-op without collector" `Quick
            test_counters_noop_without_collector;
          Alcotest.test_case "collect" `Quick test_collect_basic;
          Alcotest.test_case "nesting accumulates" `Quick test_collect_nests;
          Alcotest.test_case "exception safety" `Quick
            test_collect_restores_on_exception;
          Alcotest.test_case "register idempotent" `Quick test_register_idempotent;
          Alcotest.test_case "merge/total" `Quick test_merge_and_total;
          Alcotest.test_case "instrumented code counts" `Quick
            test_instrumented_code_counts;
        ] );
      ( "span",
        [
          Alcotest.test_case "no-op outside trace" `Quick test_span_noop_outside_trace;
          Alcotest.test_case "tree shape" `Quick test_trace_tree;
          Alcotest.test_case "exception safety" `Quick test_trace_exception_restores;
          Alcotest.test_case "export" `Quick test_span_export;
        ] );
    ]
