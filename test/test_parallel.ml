(* Tests for the domain-based parallel map. *)

module Parallel = Ncg_util.Parallel

let check_int_list = Alcotest.(check (list int))

let test_matches_sequential () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun domains ->
      check_int_list
        (Printf.sprintf "domains=%d" domains)
        (List.map (fun x -> x * x) xs)
        (Parallel.map ~domains (fun x -> x * x) xs))
    [ 1; 2; 3; 4; 7 ]

let test_order_preserved () =
  (* Results must come back in input order even with many chunks. *)
  let xs = List.init 50 (fun i -> 50 - i) in
  check_int_list "order" xs (Parallel.map ~domains:8 Fun.id xs)

let test_empty_and_singleton () =
  check_int_list "empty" [] (Parallel.map ~domains:4 Fun.id []);
  check_int_list "singleton" [ 42 ] (Parallel.map ~domains:4 Fun.id [ 42 ])

let test_more_domains_than_items () =
  check_int_list "n < domains" [ 2; 4; 6 ]
    (Parallel.map ~domains:16 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_init () =
  check_int_list "init" [ 0; 2; 4; 6 ] (Parallel.init ~domains:2 4 (fun i -> 2 * i));
  Alcotest.check_raises "negative" (Invalid_argument "Parallel.init: negative length")
    (fun () -> ignore (Parallel.init (-1) Fun.id))

let test_exception_propagates () =
  Alcotest.check_raises "raises" Exit (fun () ->
      ignore (Parallel.map ~domains:3 (fun x -> if x = 7 then raise Exit else x)
                (List.init 10 Fun.id)))

exception Chunk of int

let test_exception_original_from_spawned_domain () =
  (* Item 9 lives in the last of 4 chunks over 0..11, i.e. a spawned
     domain (chunk 0 runs in the caller) — the original exception, with
     its payload, must cross the join. *)
  Alcotest.check_raises "payload crosses domains" (Chunk 9) (fun () ->
      ignore
        (Parallel.map ~domains:4
           (fun x -> if x = 9 then raise (Chunk x) else x)
           (List.init 12 Fun.id)))

let test_exception_joins_all_domains_first () =
  (* A failure in the caller's own chunk must not abandon the spawned
     domains: every element outside the failing chunk is still processed
     exactly once before the exception is re-raised. With 4 domains over
     0..11, chunk 0 is {0,1,2}; raising at 0 leaves 9 elements. *)
  let processed = Atomic.make 0 in
  Alcotest.check_raises "chunk 0 fails" (Chunk 0) (fun () ->
      ignore
        (Parallel.map ~domains:4
           (fun x ->
             if x = 0 then raise (Chunk 0) else Atomic.incr processed;
             x)
           (List.init 12 Fun.id)));
  Alcotest.(check int) "other chunks ran to completion" 9 (Atomic.get processed)

let test_exception_deterministic_choice () =
  (* When several chunks raise, the lowest-numbered chunk wins — every
     time, regardless of domain scheduling. Chunks over 0..11 with 4
     domains are {0..2}, {3..5}, {6..8}, {9..11}; chunks 1-3 all raise,
     tagged by chunk index, and chunk 1's exception must surface. *)
  for _ = 1 to 20 do
    Alcotest.check_raises "lowest chunk's exception" (Chunk 1) (fun () ->
        ignore
          (Parallel.map ~domains:4
             (fun x -> if x >= 3 then raise (Chunk (x / 3)) else x)
             (List.init 12 Fun.id)))
  done

let test_default_domains () =
  (* Must work without specifying domains (single-core containers give
     recommended_domain_count = 1, multicore machines more). *)
  check_int_list "default" [ 1; 2; 3 ] (Parallel.map Fun.id [ 1; 2; 3 ])

let prop_equivalence =
  QCheck.Test.make ~name:"parallel map == sequential map" ~count:100
    QCheck.(pair (int_range 1 6) (list small_int))
    (fun (domains, xs) ->
      Parallel.map ~domains (fun x -> x + 1) xs = List.map (fun x -> x + 1) xs)

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "empty/singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "more domains than items" `Quick test_more_domains_than_items;
          Alcotest.test_case "init" `Quick test_init;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "exception from spawned domain" `Quick
            test_exception_original_from_spawned_domain;
          Alcotest.test_case "joins all before re-raise" `Quick
            test_exception_joins_all_domains_first;
          Alcotest.test_case "deterministic exception choice" `Quick
            test_exception_deterministic_choice;
          Alcotest.test_case "default domains" `Quick test_default_domains;
          QCheck_alcotest.to_alcotest prop_equivalence;
        ] );
    ]
