(* Tests for the sweep service: protocol codecs and addresses, the
   persistent work queue's lease/requeue/reclaim semantics, and the
   scheduler — cross-client dedup (the property the daemon exists for:
   two clients submitting the same cell cost exactly one execution and
   read back byte-identical CSV rows), round-robin fairness, the
   heartbeat monitor, worker quarantine, and wire-level cancellation. *)

module Json = Ncg_obs.Json
module Protocol = Ncg_service.Protocol
module Scheduler = Ncg_service.Scheduler
module Work_queue = Ncg_store.Work_queue
module Store = Ncg_store.Store
module Sweep_spec = Ncg.Sweep_spec
module Experiment = Ncg.Experiment

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_temp_dir f =
  let dir = Filename.temp_file "ncg_service_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* A grid small enough to execute for real in a unit test. *)
let tiny_spec =
  {
    Sweep_spec.default with
    Sweep_spec.graph_class = "tree";
    n = 8;
    alphas = [ 1.0; 3.0 ];
    ks = [ 1 ];
    trials = 1;
    seed = 7;
    budget = 10_000;
    probes = false;
  }

(* --- Protocol ------------------------------------------------------------- *)

let test_parse_addr () =
  (match Protocol.parse_addr "unix:/tmp/x.sock" with
  | Ok (Protocol.Unix_sock p) -> check_string "unix path" "/tmp/x.sock" p
  | _ -> Alcotest.fail "unix addr");
  (match Protocol.parse_addr "some/relative.sock" with
  | Ok (Protocol.Unix_sock p) -> check_string "bare path" "some/relative.sock" p
  | _ -> Alcotest.fail "bare addr");
  (match Protocol.parse_addr "tcp:localhost:7214" with
  | Ok (Protocol.Tcp (h, p)) ->
      check_string "host" "localhost" h;
      check_int "port" 7214 p
  | _ -> Alcotest.fail "tcp addr");
  check_bool "bad port rejected" true
    (Result.is_error (Protocol.parse_addr "tcp:host:notaport"));
  check_bool "unknown scheme rejected" true
    (Result.is_error (Protocol.parse_addr "http:example.com:80"))

let roundtrip_request req =
  match Protocol.request_of_json (Protocol.request_to_json req) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "request did not round-trip: %s" msg

let test_request_roundtrip () =
  (match roundtrip_request (Protocol.Hello { client = "c1"; worker = false }) with
  | Protocol.Hello { client; worker } ->
      check_string "hello client" "c1" client;
      check_bool "hello defaults to non-worker" false worker
  | _ -> Alcotest.fail "hello");
  (match roundtrip_request (Protocol.Hello { client = "w0"; worker = true }) with
  | Protocol.Hello { worker; _ } -> check_bool "hello worker flag survives" true worker
  | _ -> Alcotest.fail "hello worker");
  (match
     roundtrip_request
       (Protocol.Submit { spec = tiny_spec; deadline_ms = Some 1500 })
   with
  | Protocol.Submit { spec; deadline_ms } ->
      check_bool "spec survives" true (spec = tiny_spec);
      check_bool "deadline survives" true (deadline_ms = Some 1500)
  | _ -> Alcotest.fail "submit");
  (match roundtrip_request (Protocol.Status { job = 3 }) with
  | Protocol.Status { job } -> check_int "status job" 3 job
  | _ -> Alcotest.fail "status");
  (match roundtrip_request (Protocol.Results { job = 4 }) with
  | Protocol.Results { job } -> check_int "results job" 4 job
  | _ -> Alcotest.fail "results");
  (match roundtrip_request (Protocol.Lease { worker = "w0" }) with
  | Protocol.Lease { worker } -> check_string "lease worker" "w0" worker
  | _ -> Alcotest.fail "lease");
  (match
     roundtrip_request
       (Protocol.Complete { worker = "w0"; task = 9; result = Json.Int 1 })
   with
  | Protocol.Complete { worker; task; result } ->
      check_string "complete worker" "w0" worker;
      check_int "complete task" 9 task;
      check_bool "complete result" true (result = Json.Int 1)
  | _ -> Alcotest.fail "complete");
  (match
     roundtrip_request (Protocol.Fail { worker = "w1"; task = 2; error = "boom" })
   with
  | Protocol.Fail { worker; task; error } ->
      check_string "fail worker" "w1" worker;
      check_int "fail task" 2 task;
      check_string "fail error" "boom" error
  | _ -> Alcotest.fail "fail");
  (match roundtrip_request (Protocol.Ping { worker = "w2" }) with
  | Protocol.Ping { worker } -> check_string "ping worker" "w2" worker
  | _ -> Alcotest.fail "ping");
  (match roundtrip_request (Protocol.Cancel { job = 12 }) with
  | Protocol.Cancel { job } -> check_int "cancel job" 12 job
  | _ -> Alcotest.fail "cancel");
  (match roundtrip_request Protocol.Subscribe with
  | Protocol.Subscribe -> ()
  | _ -> Alcotest.fail "subscribe");
  match roundtrip_request Protocol.Stats with
  | Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats"

(* PR 8 speakers send schema /1 and no worker flag; the v2 daemon must
   keep understanding them verbatim. *)
let test_request_v1_schema_accepted () =
  let v1 =
    Json.Obj
      [
        ("schema", Json.String Ncg_obs.Schema.service_request_v1);
        ("verb", Json.String "hello");
        ("client", Json.String "old");
      ]
  in
  (match Protocol.request_of_json v1 with
  | Ok (Protocol.Hello { client; worker }) ->
      check_string "v1 hello client" "old" client;
      check_bool "v1 hello defaults to non-worker" false worker
  | _ -> Alcotest.fail "v1 hello");
  check_bool "future schema rejected" true
    (Result.is_error
       (Protocol.request_of_json
          (Json.Obj
             [
               ( "schema",
                 Json.String
                   ("ncg.service.request/3"
                   [@lint.allow
                     "R1"
                       "a deliberately unknown future version: the test \
                        proves the daemon rejects it, so it must never be \
                        registered"]) );
               ("verb", Json.String "stats");
             ])))

let test_response_roundtrip () =
  let rt r =
    match Protocol.response_of_json (Protocol.response_to_json r) with
    | Ok r -> r
    | Error msg -> Alcotest.failf "response did not round-trip: %s" msg
  in
  (match rt (Protocol.Resp_ok [ ("job", Json.Int 1) ]) with
  | Protocol.Resp_ok fields ->
      check_bool "ok fields" true (List.assoc_opt "job" fields = Some (Json.Int 1))
  | _ -> Alcotest.fail "ok");
  (match rt (Protocol.Resp_error "nope") with
  | Protocol.Resp_error msg -> check_string "error msg" "nope" msg
  | _ -> Alcotest.fail "error");
  check_bool "foreign schema rejected" true
    (Result.is_error (Protocol.response_of_json (Json.Obj [ ("ok", Json.Bool true) ])))

(* --- Work queue ----------------------------------------------------------- *)

let test_queue_basic () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "queue.log" in
      let q, recovery = Work_queue.openfile path in
      check_int "fresh queue replays nothing" 0 recovery.Work_queue.replayed;
      let a = Work_queue.enqueue q ~payload:"cell-a" in
      let b = Work_queue.enqueue q ~payload:"cell-b" in
      check_int "dense ids" 1 (b - a);
      check_int "pending" 2 (Work_queue.pending q);
      (match Work_queue.lease q ~worker:"w" with
      | Some e ->
          check_int "FIFO: oldest first" a e.Work_queue.id;
          check_string "payload" "cell-a" e.Work_queue.payload;
          check_int "first lease attempt" 1 e.Work_queue.attempts
      | None -> Alcotest.fail "lease should find work");
      Work_queue.complete q ~id:a;
      check_int "completed" 1 (Work_queue.completed q);
      Work_queue.cancel q ~id:b;
      check_int "cancelled" 1 (Work_queue.cancelled q);
      check_bool "empty lease" true (Work_queue.lease q ~worker:"w" = None);
      Work_queue.close q)

let test_queue_requeue_attempts () =
  with_temp_dir (fun dir ->
      let q, _ = Work_queue.openfile (Filename.concat dir "queue.log") in
      let id = Work_queue.enqueue q ~payload:"p" in
      (match Work_queue.lease q ~worker:"w" with
      | Some e -> check_int "attempt 1" 1 e.Work_queue.attempts
      | None -> Alcotest.fail "lease 1");
      Work_queue.requeue q ~id;
      (match Work_queue.lease q ~worker:"w" with
      | Some e -> check_int "attempt 2 after requeue" 2 e.Work_queue.attempts
      | None -> Alcotest.fail "lease 2");
      check_bool "complete of unleased raises" true
        (match Work_queue.complete q ~id:(id + 1) with
        | () -> false
        | exception Invalid_argument _ -> true);
      Work_queue.close q)

let test_queue_lease_id () =
  with_temp_dir (fun dir ->
      let q, _ = Work_queue.openfile (Filename.concat dir "queue.log") in
      let a = Work_queue.enqueue q ~payload:"a" in
      let b = Work_queue.enqueue q ~payload:"b" in
      (* The fairness policy leases a specific entry, skipping the FIFO
         head. *)
      (match Work_queue.lease_id q ~worker:"w" ~id:b with
      | Some e ->
          check_int "targeted lease" b e.Work_queue.id;
          check_string "targeted payload" "b" e.Work_queue.payload
      | None -> Alcotest.fail "lease_id should grant a pending entry");
      check_bool "already-leased id refused" true
        (Work_queue.lease_id q ~worker:"w2" ~id:b = None);
      (match Work_queue.lease q ~worker:"w" with
      | Some e -> check_int "FIFO head untouched until leased" a e.Work_queue.id
      | None -> Alcotest.fail "head still pending");
      Work_queue.close q)

let test_queue_runtime_reclaim () =
  with_temp_dir (fun dir ->
      let q, _ = Work_queue.openfile (Filename.concat dir "queue.log") in
      let a = Work_queue.enqueue q ~payload:"a" in
      let b = Work_queue.enqueue q ~payload:"b" in
      ignore (Work_queue.lease q ~worker:"w");
      ignore (Work_queue.lease q ~worker:"w");
      check_int "both leased" 2 (Work_queue.leased q);
      (* The heartbeat monitor's path: reclaim everything a silent
         worker holds, durably, in id order. *)
      check_bool "reclaim returns the worker's leases in id order" true
        (Work_queue.reclaim q ~worker:"w" = [ a; b ]);
      check_int "both pending again" 2 (Work_queue.pending q);
      check_int "nothing reclaimed for strangers" 0
        (List.length (Work_queue.reclaim q ~worker:"other"));
      (match Work_queue.lease q ~worker:"w2" with
      | Some e ->
          (* Like openfile's orphan pass, a runtime reclaim charges the
             interrupted attempt against the retry budget. *)
          check_int "reclaim charges the interrupted attempt" 2
            e.Work_queue.attempts
      | None -> Alcotest.fail "lease after reclaim");
      Work_queue.close q)

let test_queue_reclaims_orphan_leases () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "queue.log" in
      let q, _ = Work_queue.openfile path in
      let a = Work_queue.enqueue q ~payload:"a" in
      let _b = Work_queue.enqueue q ~payload:"b" in
      ignore (Work_queue.lease q ~worker:"w");
      (* Simulate a daemon crash: close with entry [a] still leased. *)
      Work_queue.close q;
      let q, recovery = Work_queue.openfile path in
      check_int "orphan lease reclaimed" 1 recovery.Work_queue.reclaimed;
      check_int "both entries pending again" 2 (Work_queue.pending q);
      (match Work_queue.pending_entries q with
      | [ e1; e2 ] ->
          check_int "oldest first" a e1.Work_queue.id;
          (* The crash-interrupted lease counts against the retry
             budget, exactly like a runtime requeue would. *)
          check_int "reclaim charges the interrupted attempt" 2
            e1.Work_queue.attempts;
          check_int "never-leased entry at 1 attempt" 1 e2.Work_queue.attempts
      | entries ->
          Alcotest.failf "expected 2 pending entries, got %d" (List.length entries));
      Work_queue.close q)

(* --- Scheduler ------------------------------------------------------------ *)

let scheduler_config dir =
  {
    Scheduler.store_dir = dir;
    max_retries = 1;
    default_deadline_ms = None;
    max_cells = None;
    (* Neutral health settings: the monitor is off and workers are never
       quarantined, so tests of scheduling alone see no interference.
       The health tests below override these. *)
    heartbeat_timeout_ms = 0;
    quarantine_failures = 1000;
    quarantine_cooldown_ms = 0;
  }

let submit_ok t ~client spec =
  match Scheduler.submit t ~client spec with
  | Ok info -> info
  | Error msg -> Alcotest.failf "submit failed: %s" msg

(* Drain the queue acting as the worker the daemon would drive,
   counting real [run_cell] executions. *)
let work_all t ~worker =
  let executions = ref 0 in
  let rec loop () =
    match Scheduler.lease t ~worker with
    | Scheduler.Empty -> ()
    | Scheduler.Rejected { state } ->
        Alcotest.failf "worker unexpectedly shed (%s)" state
    | Scheduler.Granted task ->
        incr executions;
        let result =
          Experiment.cell_result_to_json
            (Sweep_spec.run_cell task.Scheduler.spec task.Scheduler.cell)
        in
        (match Scheduler.complete t ~worker ~task:task.Scheduler.task_id result with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "complete failed: %s" msg);
        loop ()
  in
  loop ();
  !executions

let results_ok t ~job =
  match Scheduler.results t ~job with
  | Ok (rows, quarantined) -> (rows, quarantined)
  | Error msg -> Alcotest.failf "results failed: %s" msg

(* Dig into [stats_fields]: the request counters and the per-worker
   health pane. *)
let stats_counter t name =
  match List.assoc_opt "counters" (Scheduler.stats_fields t) with
  | Some (Json.Obj fields) -> (
      match List.assoc_opt name fields with
      | Some (Json.Int n) -> n
      | _ -> Alcotest.failf "counter %S missing from stats" name)
  | _ -> Alcotest.fail "no counters in stats"

let worker_stat t worker field =
  match List.assoc_opt "workers" (Scheduler.stats_fields t) with
  | Some (Json.List ws) -> (
      let entry =
        List.find_opt
          (function
            | Json.Obj f -> List.assoc_opt "name" f = Some (Json.String worker)
            | _ -> false)
          ws
      in
      match entry with
      | Some (Json.Obj f) -> (
          match List.assoc_opt field f with
          | Some v -> v
          | None -> Alcotest.failf "worker field %S missing" field)
      | _ -> Alcotest.failf "worker %S not in stats" worker)
  | _ -> Alcotest.fail "no workers in stats"

let test_scheduler_dedup_two_clients () =
  with_temp_dir (fun dir ->
      let t = Scheduler.create (scheduler_config dir) in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          (* Two clients submit the same grid before any work happens:
             the second submission must attach to the first's in-flight
             cells, not queue duplicates. *)
          let info1 = submit_ok t ~client:"alice" tiny_spec in
          let info2 = submit_ok t ~client:"bob" tiny_spec in
          let cells = List.length (Sweep_spec.cells tiny_spec) in
          check_int "first submission queues everything" cells
            info1.Scheduler.queued;
          check_int "second submission queues nothing" 0 info2.Scheduler.queued;
          check_int "second submission dedups everything" cells
            info2.Scheduler.deduped;
          let executions = work_all t ~worker:"w" in
          (* The acceptance property: one execution and one store insert
             per distinct cell, however many clients asked for it. *)
          check_int "each distinct cell ran exactly once" cells executions;
          check_int "store inserts == unique executions" cells
            (Store.stats (Scheduler.store t)).Store.inserts;
          let rows1, q1 = results_ok t ~job:info1.Scheduler.job in
          let rows2, q2 = results_ok t ~job:info2.Scheduler.job in
          check_int "no quarantine" 0 (List.length q1 + List.length q2);
          check_int "full grid" cells (List.length rows1);
          check_bool "both clients read byte-identical rows" true
            (rows1 = rows2)))

let test_scheduler_fair_round_robin () =
  with_temp_dir (fun dir ->
      let t = Scheduler.create (scheduler_config dir) in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          (* Disjoint grids so each lease's alpha identifies its
             submitting client. *)
          let spec_a = { tiny_spec with Sweep_spec.alphas = [ 1.0; 3.0 ] } in
          let spec_b = { tiny_spec with Sweep_spec.alphas = [ 5.0; 7.0 ] } in
          ignore (submit_ok t ~client:"alice" spec_a);
          ignore (submit_ok t ~client:"bob" spec_b);
          let next () =
            match Scheduler.lease t ~worker:"w" with
            | Scheduler.Granted task ->
                (task.Scheduler.task_id, task.Scheduler.cell.Experiment.alpha)
            | _ -> Alcotest.fail "expected a grant"
          in
          (* Global FIFO would drain alice's grid first (1,3,5,7);
             round-robin interleaves the clients, each contributing its
             own oldest cell in turn. The lets force evaluation order —
             a list literal would observe the leases right-to-left. *)
          let l1 = next () in
          let l2 = next () in
          let l3 = next () in
          let l4 = next () in
          let got = [ l1; l2; l3; l4 ] in
          if got <> [ (0, 1.0); (2, 5.0); (1, 3.0); (3, 7.0) ] then
            Alcotest.failf "lease order: %s"
              (String.concat ", "
                 (List.map (fun (id, a) -> Printf.sprintf "%d:%g" id a) got));
          check_bool "queue drained" true
            (Scheduler.lease t ~worker:"w" = Scheduler.Empty)))

let test_scheduler_cache_hit () =
  with_temp_dir (fun dir ->
      (* Warm the store through one scheduler lifetime... *)
      let t = Scheduler.create (scheduler_config dir) in
      let info = submit_ok t ~client:"warm" tiny_spec in
      ignore (work_all t ~worker:"w");
      let rows_first, _ = results_ok t ~job:info.Scheduler.job in
      Scheduler.close t;
      (* ...then a fresh daemon over the same store answers from cache:
         nothing queued, job done at submit time. *)
      let t = Scheduler.create (scheduler_config dir) in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          let info = submit_ok t ~client:"cold" tiny_spec in
          let cells = List.length (Sweep_spec.cells tiny_spec) in
          check_int "all cells cached" cells info.Scheduler.cached;
          check_int "nothing queued" 0 info.Scheduler.queued;
          (match Scheduler.status t ~job:info.Scheduler.job with
          | Some fields ->
              check_bool "job done immediately" true
                (List.assoc_opt "state" fields = Some (Json.String "done"))
          | None -> Alcotest.fail "job status");
          let rows, _ = results_ok t ~job:info.Scheduler.job in
          check_bool "cached rows byte-identical to computed ones" true
            (rows = rows_first)))

let test_scheduler_fail_quarantines () =
  with_temp_dir (fun dir ->
      (* max_retries = 1: the second failed attempt is terminal. *)
      let t = Scheduler.create (scheduler_config dir) in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          let spec = { tiny_spec with Sweep_spec.alphas = [ 2.0 ] } in
          let info = submit_ok t ~client:"c" spec in
          check_int "one cell" 1 info.Scheduler.total;
          let fail_once () =
            match Scheduler.lease t ~worker:"w" with
            | Scheduler.Granted task -> (
                match
                  Scheduler.fail t ~worker:"w" ~task:task.Scheduler.task_id
                    ~error:"induced"
                with
                | Ok () -> ()
                | Error msg -> Alcotest.failf "fail failed: %s" msg)
            | _ -> Alcotest.fail "expected a leasable task"
          in
          fail_once ();
          (* Attempt 1 failed: requeued, still leasable. *)
          fail_once ();
          (* Attempt 2 failed: quarantined — queue is empty now. *)
          check_bool "no third attempt" true
            (Scheduler.lease t ~worker:"w" = Scheduler.Empty);
          let rows, quarantined = results_ok t ~job:info.Scheduler.job in
          check_int "no rows" 0 (List.length rows);
          (match quarantined with
          | [ (alpha, k, error) ] ->
              check_bool "cell identity" true (alpha = 2.0 && k = 1);
              check_string "error carried" "induced" error
          | _ -> Alcotest.fail "expected exactly one quarantined cell");
          check_bool "scheduler idle after quarantine" true (Scheduler.idle t)))

let test_scheduler_worker_lost () =
  with_temp_dir (fun dir ->
      let t = Scheduler.create (scheduler_config dir) in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          let info = submit_ok t ~client:"c" tiny_spec in
          (match Scheduler.lease t ~worker:"doomed" with
          | Scheduler.Granted _ -> ()
          | _ -> Alcotest.fail "lease");
          (* The doomed worker's connection drops: its lease goes back
             to pending and a healthy worker finishes the job. *)
          check_int "one lease requeued" 1 (Scheduler.worker_lost t ~worker:"doomed");
          check_bool "lost worker drained" true
            (worker_stat t "doomed" "state" = Json.String "drained");
          let cells = List.length (Sweep_spec.cells tiny_spec) in
          check_int "healthy worker runs the whole grid" cells
            (work_all t ~worker:"healthy");
          let rows, quarantined = results_ok t ~job:info.Scheduler.job in
          check_int "no quarantine" 0 (List.length quarantined);
          check_int "full grid" cells (List.length rows)))

let test_scheduler_heartbeat_expiry () =
  with_temp_dir (fun dir ->
      let cfg =
        { (scheduler_config dir) with Scheduler.heartbeat_timeout_ms = 50 }
      in
      let t = Scheduler.create cfg in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          let spec = { tiny_spec with Sweep_spec.alphas = [ 2.0 ] } in
          let info = submit_ok t ~client:"c" spec in
          let task =
            match Scheduler.lease t ~worker:"slow" with
            | Scheduler.Granted task -> task
            | _ -> Alcotest.fail "lease"
          in
          (* A beating worker keeps its lease across ticks... *)
          Unix.sleepf 0.005;
          ignore (Scheduler.heartbeat t ~worker:"slow");
          Scheduler.tick t;
          check_int "lease held while beating" 0
            (stats_counter t "lease_expiries");
          check_int "heartbeat counted" 1 (stats_counter t "heartbeats");
          (* ...then it goes silent past the timeout: the monitor
             durably reclaims the lease and charges the attempt. *)
          Unix.sleepf 0.2;
          Scheduler.tick t;
          check_int "lease reclaimed from the silent worker" 1
            (stats_counter t "lease_expiries");
          check_bool "silent worker suspected" true
            (worker_stat t "slow" "state" = Json.String "suspect");
          (match Scheduler.lease t ~worker:"steady" with
          | Scheduler.Granted retry ->
              check_int "expiry charged the interrupted attempt" 2
                retry.Scheduler.attempts;
              check_bool "same cell re-dispatched" true
                (retry.Scheduler.cell = task.Scheduler.cell);
              let result =
                Experiment.cell_result_to_json
                  (Sweep_spec.run_cell retry.Scheduler.spec retry.Scheduler.cell)
              in
              (match
                 Scheduler.complete t ~worker:"steady"
                   ~task:retry.Scheduler.task_id result
               with
              | Ok () -> ()
              | Error msg -> Alcotest.failf "complete failed: %s" msg)
          | _ -> Alcotest.fail "re-lease after expiry");
          let rows, quarantined = results_ok t ~job:info.Scheduler.job in
          check_int "no quarantine" 0 (List.length quarantined);
          check_int "cell delivered despite the silent worker" 1
            (List.length rows)))

let test_scheduler_worker_quarantine_readmission () =
  with_temp_dir (fun dir ->
      let cfg =
        {
          (scheduler_config dir) with
          Scheduler.max_retries = 5;
          quarantine_failures = 2;
          quarantine_cooldown_ms = 200;
        }
      in
      let t = Scheduler.create cfg in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          let spec = { tiny_spec with Sweep_spec.alphas = [ 2.0 ] } in
          let info = submit_ok t ~client:"c" spec in
          let fail_once () =
            match Scheduler.lease t ~worker:"flaky" with
            | Scheduler.Granted task -> (
                match
                  Scheduler.fail t ~worker:"flaky" ~task:task.Scheduler.task_id
                    ~error:"induced"
                with
                | Ok () -> ()
                | Error msg -> Alcotest.failf "fail failed: %s" msg)
            | _ -> Alcotest.fail "expected a grant"
          in
          fail_once ();
          check_bool "one strike: suspect" true
            (worker_stat t "flaky" "state" = Json.String "suspect");
          fail_once ();
          (* The second consecutive failure crosses the threshold. *)
          check_bool "two strikes: quarantined" true
            (worker_stat t "flaky" "state" = Json.String "quarantined");
          check_int "worker quarantine counted" 1
            (stats_counter t "worker_quarantines");
          (match Scheduler.lease t ~worker:"flaky" with
          | Scheduler.Rejected { state } ->
              check_string "lease shed with the state" "quarantined" state
          | _ -> Alcotest.fail "quarantined worker must be shed");
          (* The cell itself is unharmed: a healthy worker runs it. *)
          check_int "healthy worker completes the cell" 1
            (work_all t ~worker:"steady");
          let rows, quarantined = results_ok t ~job:info.Scheduler.job in
          check_int "no cell quarantine" 0 (List.length quarantined);
          check_int "one row" 1 (List.length rows);
          (* Cooldown served: the next ping readmits on probation. *)
          Unix.sleepf 0.25;
          let state, revoked = Scheduler.heartbeat t ~worker:"flaky" in
          check_string "readmitted as suspect" "suspect" state;
          check_int "no revocations pending" 0 (List.length revoked);
          match Scheduler.lease t ~worker:"flaky" with
          | Scheduler.Empty -> ()
          | _ -> Alcotest.fail "readmitted worker polls again (queue is empty)"))

let test_scheduler_cancel_revokes_lease () =
  with_temp_dir (fun dir ->
      let t = Scheduler.create (scheduler_config dir) in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          let spec = { tiny_spec with Sweep_spec.alphas = [ 2.0 ] } in
          let info = submit_ok t ~client:"c" spec in
          let task =
            match Scheduler.lease t ~worker:"rw" with
            | Scheduler.Granted task -> task
            | _ -> Alcotest.fail "lease"
          in
          (match Scheduler.cancel t ~job:info.Scheduler.job with
          | Ok (released, revoked) ->
              check_int "nothing merely released" 0 released;
              check_int "one lease revoked" 1 revoked
          | Error msg -> Alcotest.failf "cancel failed: %s" msg);
          check_bool "revocation flag set" true
            (Atomic.get task.Scheduler.revoked);
          (* The in-process execution path: the revoked flag trips the
             computation's next cooperative checkpoint mid-cell. *)
          (match
             Ncg_fault.Cancel.with_control ~cancel:task.Scheduler.revoked
               (fun () ->
                 Sweep_spec.run_cell task.Scheduler.spec task.Scheduler.cell)
           with
          | _ -> Alcotest.fail "revoked cell must abort at a checkpoint"
          | exception Ncg_fault.Cancel.Timed_out _ -> ());
          (* The remote path: the worker's next heartbeat carries the
             revocation, exactly once. *)
          let _, revoked_ids = Scheduler.heartbeat t ~worker:"rw" in
          check_bool "heartbeat delivers the revocation" true
            (revoked_ids = [ task.Scheduler.task_id ]);
          let _, again = Scheduler.heartbeat t ~worker:"rw" in
          check_int "revocation delivered once" 0 (List.length again);
          (match Scheduler.status t ~job:info.Scheduler.job with
          | Some fields ->
              check_bool "job cancelled" true
                (List.assoc_opt "state" fields = Some (Json.String "cancelled"))
          | None -> Alcotest.fail "status");
          check_bool "results refused for cancelled job" true
            (Result.is_error (Scheduler.results t ~job:info.Scheduler.job));
          check_bool "cancel of a terminal job refused" true
            (Result.is_error (Scheduler.cancel t ~job:info.Scheduler.job));
          check_int "cancel counted" 1 (stats_counter t "cancels");
          check_bool "queue drained by cancellation" true (Scheduler.idle t)))

let test_scheduler_cancel_preserves_shared () =
  with_temp_dir (fun dir ->
      let t = Scheduler.create (scheduler_config dir) in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          let info_a = submit_ok t ~client:"alice" tiny_spec in
          let info_b = submit_ok t ~client:"bob" tiny_spec in
          (* Alice bails; bob still waits on every cell, so nothing may
             be released or revoked. *)
          (match Scheduler.cancel t ~job:info_a.Scheduler.job with
          | Ok (released, revoked) ->
              check_int "shared cells survive the cancel" 0 (released + revoked)
          | Error msg -> Alcotest.failf "cancel failed: %s" msg);
          let cells = List.length (Sweep_spec.cells tiny_spec) in
          check_int "bob's grid still runs in full" cells
            (work_all t ~worker:"w");
          let rows, quarantined = results_ok t ~job:info_b.Scheduler.job in
          check_int "no quarantine" 0 (List.length quarantined);
          check_int "full grid for the surviving client" cells
            (List.length rows)))

let test_scheduler_deadline_expiry () =
  with_temp_dir (fun dir ->
      let t = Scheduler.create (scheduler_config dir) in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          let info =
            match Scheduler.submit t ~client:"c" ~deadline_ms:0 tiny_spec with
            | Ok info -> info
            | Error msg -> Alcotest.failf "submit failed: %s" msg
          in
          Unix.sleepf 0.01;
          Scheduler.tick t;
          (match Scheduler.status t ~job:info.Scheduler.job with
          | Some fields ->
              check_bool "job expired" true
                (List.assoc_opt "state" fields = Some (Json.String "expired"))
          | None -> Alcotest.fail "job status");
          check_bool "results refused for expired job" true
            (Result.is_error (Scheduler.results t ~job:info.Scheduler.job));
          (* No other job wants these cells: expiry released them. *)
          check_bool "queue drained by expiry" true (Scheduler.idle t)))

let test_scheduler_restart_readopts_queue () =
  with_temp_dir (fun dir ->
      (* Enqueue work, lease some of it, then "crash" (close without
         completing). *)
      let t = Scheduler.create (scheduler_config dir) in
      let info = submit_ok t ~client:"c" tiny_spec in
      (match Scheduler.lease t ~worker:"w" with
      | Scheduler.Granted _ -> ()
      | _ -> Alcotest.fail "lease");
      Scheduler.close t;
      ignore info;
      (* The restarted daemon re-adopts the recovered entries as
         in-flight cells: a resubmission dedups against them instead of
         double-queueing. *)
      let t = Scheduler.create (scheduler_config dir) in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          let cells = List.length (Sweep_spec.cells tiny_spec) in
          let info = submit_ok t ~client:"again" tiny_spec in
          check_int "resubmission queues nothing" 0 info.Scheduler.queued;
          check_int "resubmission attaches to recovered work" cells
            info.Scheduler.deduped;
          check_int "recovered work runs once" cells (work_all t ~worker:"w");
          let rows, quarantined = results_ok t ~job:info.Scheduler.job in
          check_int "no quarantine" 0 (List.length quarantined);
          check_int "full grid" cells (List.length rows)))

(* Run [tiny_spec] to completion with [nworkers] interleaved workers,
   failing the alpha = 3.0 cell deterministically on every attempt.
   Returns the outcome vector: CSV rows plus quarantined cells. *)
let run_with_workers nworkers =
  with_temp_dir (fun dir ->
      let t = Scheduler.create (scheduler_config dir) in
      Fun.protect
        ~finally:(fun () -> Scheduler.close t)
        (fun () ->
          let info = submit_ok t ~client:"c" tiny_spec in
          let workers = List.init nworkers (Printf.sprintf "w%d") in
          let progressed = ref true in
          while !progressed do
            progressed := false;
            List.iter
              (fun w ->
                match Scheduler.lease t ~worker:w with
                | Scheduler.Empty -> ()
                | Scheduler.Rejected { state } ->
                    Alcotest.failf "worker unexpectedly shed (%s)" state
                | Scheduler.Granted task ->
                    progressed := true;
                    let outcome =
                      if task.Scheduler.cell.Experiment.alpha = 3.0 then
                        Scheduler.fail t ~worker:w
                          ~task:task.Scheduler.task_id ~error:"induced"
                      else
                        Scheduler.complete t ~worker:w
                          ~task:task.Scheduler.task_id
                          (Experiment.cell_result_to_json
                             (Sweep_spec.run_cell task.Scheduler.spec
                                task.Scheduler.cell))
                    in
                    (match outcome with
                    | Ok () -> ()
                    | Error msg -> Alcotest.failf "worker %s: %s" w msg))
              workers
          done;
          (* One cell succeeds, the other exhausts its retry budget:
             the job is done with a quarantine gap. *)
          results_ok t ~job:info.Scheduler.job))

let test_scheduler_worker_count_independence () =
  let rows1, quarantined1 = run_with_workers 1 in
  check_int "failing cell quarantined" 1 (List.length quarantined1);
  check_int "surviving cell delivered" 1 (List.length rows1);
  let v2 = run_with_workers 2 in
  let v4 = run_with_workers 4 in
  check_bool "2 workers: same outcome vector as 1" true
    (v2 = (rows1, quarantined1));
  check_bool "4 workers: same outcome vector as 1" true
    (v4 = (rows1, quarantined1))

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse_addr" `Quick test_parse_addr;
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "v1 schema still accepted" `Quick
            test_request_v1_schema_accepted;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
        ] );
      ( "work_queue",
        [
          Alcotest.test_case "enqueue/lease/complete/cancel" `Quick
            test_queue_basic;
          Alcotest.test_case "requeue increments attempts" `Quick
            test_queue_requeue_attempts;
          Alcotest.test_case "targeted lease by id" `Quick test_queue_lease_id;
          Alcotest.test_case "runtime reclaim of a worker's leases" `Quick
            test_queue_runtime_reclaim;
          Alcotest.test_case "reopen reclaims orphan leases" `Quick
            test_queue_reclaims_orphan_leases;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "two clients, one execution per cell" `Quick
            test_scheduler_dedup_two_clients;
          Alcotest.test_case "round-robin fairness across clients" `Quick
            test_scheduler_fair_round_robin;
          Alcotest.test_case "store warm across daemon restarts" `Quick
            test_scheduler_cache_hit;
          Alcotest.test_case "retry budget exhausts to quarantine" `Quick
            test_scheduler_fail_quarantines;
          Alcotest.test_case "lost worker's lease is requeued" `Quick
            test_scheduler_worker_lost;
          Alcotest.test_case "silent worker's lease expires" `Quick
            test_scheduler_heartbeat_expiry;
          Alcotest.test_case "worker quarantine and readmission" `Quick
            test_scheduler_worker_quarantine_readmission;
          Alcotest.test_case "cancel revokes the lease mid-cell" `Quick
            test_scheduler_cancel_revokes_lease;
          Alcotest.test_case "cancel spares cells shared with live jobs" `Quick
            test_scheduler_cancel_preserves_shared;
          Alcotest.test_case "deadline expiry releases queued cells" `Quick
            test_scheduler_deadline_expiry;
          Alcotest.test_case "restart re-adopts recovered queue" `Quick
            test_scheduler_restart_readopts_queue;
          Alcotest.test_case "outcome vector independent of worker count" `Quick
            test_scheduler_worker_count_independence;
        ] );
    ]
