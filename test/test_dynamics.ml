(* Tests for the round-robin best-response dynamics. *)

module Strategy = Ncg.Strategy
module Dynamics = Ncg.Dynamics
module Lke = Ncg.Lke
module Game = Ncg.Game
module Features = Ncg.Features
module Rng = Ncg_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let config ?(variant = Game.Max) ?(max_rounds = 100) ~alpha ~k () =
  { (Dynamics.default_config ~alpha ~k) with Dynamics.variant; max_rounds }

let test_star_already_stable () =
  (* The star at alpha >= 1 is an LKE: dynamics must stop after one
     no-change round. *)
  let s = Strategy.of_buys ~n:6 (Ncg_gen.Classic.star_buys 6) in
  let r = Dynamics.run (config ~alpha:1.5 ~k:2 ()) s in
  (match r.Dynamics.outcome with
  | Dynamics.Converged 1 -> ()
  | _ -> Alcotest.fail "expected immediate convergence");
  check_int "no moves" 0 r.Dynamics.total_moves;
  check_bool "profile unchanged" true (Strategy.equal s r.Dynamics.final)

let test_path_converges_to_lke () =
  let s = Strategy.of_buys ~n:8 (List.init 7 (fun i -> (i, i + 1))) in
  let cfg = config ~alpha:1.0 ~k:2 () in
  let r = Dynamics.run cfg s in
  (match r.Dynamics.outcome with
  | Dynamics.Converged _ -> ()
  | _ -> Alcotest.fail "expected convergence");
  check_bool "final is an LKE" true (Lke.is_lke_max ~alpha:1.0 ~k:2 r.Dynamics.final)

let test_connectivity_preserved () =
  let rng = Rng.create 3 in
  let g = Ncg_gen.Random_tree.generate rng 15 in
  let s = Strategy.random_orientation rng g in
  let r = Dynamics.run (config ~alpha:0.5 ~k:3 ()) s in
  check_bool "final connected" true
    (Ncg_graph.Bfs.is_connected (Strategy.graph r.Dynamics.final))

let test_disconnected_initial_rejected () =
  let s = Strategy.of_buys ~n:4 [ (0, 1) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Dynamics.run: initial network must be connected") (fun () ->
      ignore (Dynamics.run (config ~alpha:1.0 ~k:2 ()) s))

let test_max_rounds () =
  let s = Strategy.of_buys ~n:6 (Ncg_gen.Classic.star_buys 6) in
  let r = Dynamics.run (config ~alpha:1.0 ~k:2 ~max_rounds:0 ()) s in
  check_bool "max rounds" true (r.Dynamics.outcome = Dynamics.Max_rounds_exceeded);
  check_int "zero rounds" 0 r.Dynamics.rounds

let test_features_collected () =
  let s = Strategy.of_buys ~n:8 (List.init 7 (fun i -> (i, i + 1))) in
  let r = Dynamics.run (config ~alpha:1.0 ~k:2 ()) s in
  check_int "one feature record per round" r.Dynamics.rounds
    (List.length r.Dynamics.features);
  (* Rounds are chronological starting at 1. *)
  List.iteri
    (fun i f -> check_int "chronological" (i + 1) f.Features.round)
    r.Dynamics.features;
  (* The last round has zero changes (that's the convergence witness). *)
  (match List.rev r.Dynamics.features with
  | last :: _ -> check_int "last round quiet" 0 last.Features.changes
  | [] -> Alcotest.fail "expected features");
  (* Total moves = sum of per-round changes. *)
  check_int "moves consistent" r.Dynamics.total_moves
    (List.fold_left (fun acc f -> acc + f.Features.changes) 0 r.Dynamics.features)

let test_features_disabled () =
  let s = Strategy.of_buys ~n:6 (Ncg_gen.Classic.star_buys 6) in
  let cfg = { (config ~alpha:1.0 ~k:2 ()) with Dynamics.collect_features = false } in
  let r = Dynamics.run cfg s in
  check_int "no features" 0 (List.length r.Dynamics.features)

let test_determinism () =
  let make () =
    let rng = Rng.create 99 in
    let g = Ncg_gen.Random_tree.generate rng 12 in
    Strategy.random_orientation rng g
  in
  let r1 = Dynamics.run (config ~alpha:0.7 ~k:3 ()) (make ()) in
  let r2 = Dynamics.run (config ~alpha:0.7 ~k:3 ()) (make ()) in
  check_bool "same final profile" true (Strategy.equal r1.Dynamics.final r2.Dynamics.final);
  check_int "same move count" r1.Dynamics.total_moves r2.Dynamics.total_moves

let test_move_budget () =
  let make () =
    let rng = Rng.create 99 in
    let g = Ncg_gen.Random_tree.generate rng 12 in
    Strategy.random_orientation rng g
  in
  (* A starved budget turns a long best-response search into a reported
     timeout instead of an open-ended run. *)
  (match Dynamics.run { (config ~alpha:0.7 ~k:3 ()) with Dynamics.move_budget = 3 } (make ()) with
  | _ -> Alcotest.fail "tiny move budget should trip"
  | exception Ncg_fault.Cancel.Timed_out what ->
      Alcotest.(check string) "what" "step budget exhausted" what);
  (* A generous budget never fires and changes nothing: same results as
     unlimited. *)
  let r1 = Dynamics.run { (config ~alpha:0.7 ~k:3 ()) with Dynamics.move_budget = 0 } (make ()) in
  let r2 =
    Dynamics.run { (config ~alpha:0.7 ~k:3 ()) with Dynamics.move_budget = 1_000_000 } (make ())
  in
  check_bool "same final profile" true (Strategy.equal r1.Dynamics.final r2.Dynamics.final);
  check_int "same move count" r1.Dynamics.total_moves r2.Dynamics.total_moves

let test_best_response_step () =
  (* Star with cheap edges: a leaf's step changes the profile. *)
  let s = Strategy.of_buys ~n:5 (Ncg_gen.Classic.star_buys 5) in
  let cfg = config ~alpha:0.1 ~k:2 () in
  let g = Strategy.graph s in
  (match Dynamics.best_response_step cfg s g 1 with
  | Some (s', old_cost, new_cost) ->
      check_bool "changed" false (Strategy.equal s s');
      check_bool "player 1 now owns edges" true (Strategy.bought_count s' 1 > 0);
      check_bool "move strictly improves" true (new_cost < old_cost)
  | None -> Alcotest.fail "leaf should move at alpha=0.1");
  (* The center has no improving move. *)
  check_bool "center stays" true (Dynamics.best_response_step cfg s g 0 = None)

let test_sum_dynamics_runs () =
  let s = Strategy.of_buys ~n:8 (List.init 7 (fun i -> (i, i + 1))) in
  let cfg = config ~variant:Game.Sum ~alpha:1.0 ~k:2 () in
  let r = Dynamics.run cfg s in
  (match r.Dynamics.outcome with
  | Dynamics.Converged _ -> ()
  | _ -> Alcotest.fail "sum dynamics should converge here");
  check_bool "final connected" true
    (Ncg_graph.Bfs.is_connected (Strategy.graph r.Dynamics.final))

let test_csv_row () =
  let s = Strategy.of_buys ~n:6 (Ncg_gen.Classic.star_buys 6) in
  let g = Strategy.graph s in
  let f =
    Features.collect Game.Max ~alpha:1.0 ~k:2 ~round:1 ~changes:0 s g
  in
  let row = Features.to_csv_row f in
  check_int "field count"
    (List.length (String.split_on_char ',' Features.csv_header))
    (List.length (String.split_on_char ',' row))

let test_local_moves_dynamics () =
  (* Better-response (single-move) dynamics also converge; the result is
     single-move stable but not necessarily an LKE. *)
  let rng = Rng.create 21 in
  let g = Ncg_gen.Random_tree.generate rng 20 in
  let s = Strategy.random_orientation rng g in
  let cfg = { (config ~alpha:1.0 ~k:3 ()) with Dynamics.response = `Local_moves } in
  let r = Dynamics.run cfg s in
  (match r.Dynamics.outcome with
  | Dynamics.Converged _ | Dynamics.Cycle_detected _ -> ()
  | Dynamics.Max_rounds_exceeded -> Alcotest.fail "local-move dynamics ran away");
  check_bool "connected" true
    (Ncg_graph.Bfs.is_connected (Strategy.graph r.Dynamics.final))

let test_local_moves_never_below_best_quality () =
  (* With exact responses the same start converges too; both engines end
     connected and stable under their own notion of improvement. *)
  let rng = Rng.create 4 in
  let g = Ncg_gen.Random_tree.generate rng 15 in
  let s = Strategy.random_orientation rng g in
  let exact = Dynamics.run (config ~alpha:2.0 ~k:3 ()) s in
  let local =
    Dynamics.run { (config ~alpha:2.0 ~k:3 ()) with Dynamics.response = `Local_moves } s
  in
  check_bool "both converge" true
    (match (exact.Dynamics.outcome, local.Dynamics.outcome) with
    | Dynamics.Converged _, Dynamics.Converged _ -> true
    | _ -> false)

let test_random_sweep_order () =
  let rng = Rng.create 8 in
  let g = Ncg_gen.Random_tree.generate rng 15 in
  let s = Strategy.random_orientation rng g in
  let cfg = { (config ~alpha:1.0 ~k:3 ()) with Dynamics.order = `Random_sweep 5 } in
  let r = Dynamics.run cfg s in
  (match r.Dynamics.outcome with
  | Dynamics.Converged _ -> ()
  | Dynamics.Cycle_detected _ -> Alcotest.fail "cycle detection must be off"
  | Dynamics.Max_rounds_exceeded -> Alcotest.fail "should converge");
  (* Deterministic given the sweep seed. *)
  let r2 = Dynamics.run cfg s in
  check_bool "sweep-seed determinism" true
    (Strategy.equal r.Dynamics.final r2.Dynamics.final);
  (* The converged profile is an LKE regardless of visit order. *)
  check_bool "still an LKE" true (Lke.is_lke_max ~alpha:1.0 ~k:3 r.Dynamics.final)

(* Property: on trees with alpha >= 1 the dynamics converges quickly and the
   result is an LKE. The paper observed convergence in <= ~7 rounds on
   trees; we allow a loose cap. *)
let prop_tree_dynamics_converge =
  QCheck.Test.make ~name:"tree dynamics converge to an LKE" ~count:20
    QCheck.(
      quad (int_range 5 18) (int_range 2 4) (int_range 0 100_000)
        (float_range 1.0 5.0))
    (fun (n, k, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let r = Dynamics.run (config ~alpha ~k ~max_rounds:60 ()) s in
      match r.Dynamics.outcome with
      | Dynamics.Converged _ -> Lke.is_lke_max ~alpha ~k r.Dynamics.final
      | Dynamics.Cycle_detected _ -> true (* rare but legitimate *)
      | Dynamics.Max_rounds_exceeded -> false)

(* Lemma 3.13's layer growth as a falsifiable invariant on equilibria. *)
let prop_equilibria_satisfy_ball_growth =
  QCheck.Test.make ~name:"converged equilibria satisfy Lemma 3.13's layer bound"
    ~count:25
    QCheck.(
      quad (int_range 6 20) (int_range 2 4) (int_range 0 100_000)
        (float_range 0.3 4.0))
    (fun (n, k, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let r = Dynamics.run (config ~alpha ~k ()) s in
      match r.Dynamics.outcome with
      | Dynamics.Converged _ ->
          Ncg.Bounds.check_ball_growth (Strategy.graph r.Dynamics.final) ~alpha ~k
      | _ -> true)

(* Lemma 3.17 as a falsifiable invariant: every equilibrium the dynamics
   produces has girth >= 2 + min(alpha, 2k). *)
let prop_equilibria_satisfy_girth_invariant =
  QCheck.Test.make ~name:"converged equilibria satisfy Lemma 3.17's girth bound"
    ~count:25
    QCheck.(
      quad (int_range 5 18) (int_range 2 4) (int_range 0 100_000)
        (float_range 0.3 5.0))
    (fun (n, k, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let r = Dynamics.run (config ~alpha ~k ()) s in
      match r.Dynamics.outcome with
      | Dynamics.Converged _ ->
          Ncg.Bounds.check_equilibrium_girth
            (Strategy.graph r.Dynamics.final)
            ~alpha ~k
      | _ -> true)

let prop_social_cost_finite_throughout =
  QCheck.Test.make ~name:"network stays connected through the dynamics" ~count:15
    QCheck.(triple (int_range 5 15) (int_range 0 100_000) (float_range 0.2 3.0))
    (fun (n, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let r = Dynamics.run (config ~alpha ~k:3 ~max_rounds:60 ()) s in
      List.for_all
        (fun f -> f.Features.diameter >= 0 && not (Float.is_nan f.Features.social_cost))
        r.Dynamics.features)

let () =
  Alcotest.run "dynamics"
    [
      ( "outcomes",
        [
          Alcotest.test_case "stable start" `Quick test_star_already_stable;
          Alcotest.test_case "path converges to LKE" `Quick test_path_converges_to_lke;
          Alcotest.test_case "connectivity preserved" `Quick test_connectivity_preserved;
          Alcotest.test_case "disconnected rejected" `Quick test_disconnected_initial_rejected;
          Alcotest.test_case "max rounds" `Quick test_max_rounds;
        ] );
      ( "features",
        [
          Alcotest.test_case "collected per round" `Quick test_features_collected;
          Alcotest.test_case "disabled" `Quick test_features_disabled;
          Alcotest.test_case "csv row" `Quick test_csv_row;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "move budget" `Quick test_move_budget;
          Alcotest.test_case "single step" `Quick test_best_response_step;
          Alcotest.test_case "sum variant" `Quick test_sum_dynamics_runs;
        ] );
      ( "modes",
        [
          Alcotest.test_case "local-move response" `Quick test_local_moves_dynamics;
          Alcotest.test_case "exact vs local both converge" `Quick
            test_local_moves_never_below_best_quality;
          Alcotest.test_case "random sweep order" `Quick test_random_sweep_order;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_tree_dynamics_converge;
          QCheck_alcotest.to_alcotest prop_equilibria_satisfy_girth_invariant;
          QCheck_alcotest.to_alcotest prop_equilibria_satisfy_ball_growth;
          QCheck_alcotest.to_alcotest prop_social_cost_finite_throughout;
        ] );
    ]
