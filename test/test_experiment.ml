(* Tests for the experiment harness. *)

module Experiment = Ncg.Experiment
module Strategy = Ncg.Strategy
module Dynamics = Ncg.Dynamics
module Game = Ncg.Game
module Graph = Ncg_graph.Graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_paper_grids () =
  check_int "15 alphas" 15 (List.length Experiment.paper_alphas);
  check_int "12 ks" 12 (List.length Experiment.paper_ks);
  check_bool "k=1000 included" true (List.mem 1000 Experiment.paper_ks);
  check_bool "alpha=0.025 included" true (List.mem 0.025 Experiment.paper_alphas)

let test_initial_tree () =
  let s = Experiment.initial_tree ~seed:5 ~n:30 in
  check_int "players" 30 (Strategy.n_players s);
  check_int "purchases = n-1" 29 (Strategy.total_bought s);
  check_bool "connected" true (Ncg_graph.Bfs.is_connected (Strategy.graph s));
  (* Deterministic per seed. *)
  let s' = Experiment.initial_tree ~seed:5 ~n:30 in
  check_bool "deterministic" true (Strategy.equal s s');
  let s2 = Experiment.initial_tree ~seed:6 ~n:30 in
  check_bool "seed matters" false (Strategy.equal s s2)

let test_initial_gnp () =
  let s = Experiment.initial_gnp ~seed:7 ~n:40 ~p:0.15 in
  check_int "players" 40 (Strategy.n_players s);
  check_bool "connected" true (Ncg_graph.Bfs.is_connected (Strategy.graph s));
  check_int "purchases = edges" (Graph.size (Strategy.graph s)) (Strategy.total_bought s)

let test_initial_stats () =
  let s = Experiment.initial_tree ~seed:11 ~n:25 in
  let st = Experiment.initial_stats s in
  let g = Strategy.graph s in
  check_int "edges" (Graph.size g) st.Experiment.edges;
  check_int "diameter"
    (match Ncg_graph.Metrics.diameter g with Some d -> d | None -> -1)
    st.Experiment.diameter;
  check_int "max degree" (Ncg_graph.Metrics.max_degree g) st.Experiment.max_degree;
  check_bool "max bought >= 1" true (st.Experiment.max_bought >= 1)

let test_run_one () =
  let s = Experiment.initial_tree ~seed:3 ~n:15 in
  let cfg = Dynamics.default_config ~alpha:2.0 ~k:3 in
  let r = Experiment.run_one cfg s in
  check_bool "converged" true r.Experiment.converged;
  check_bool "not cycled" true (not r.Experiment.cycled);
  check_bool "quality >= 1 for alpha >= 1" true (r.Experiment.quality >= 1.0 -. 1e-9);
  check_bool "unfairness >= 1" true (r.Experiment.unfairness >= 1.0 -. 1e-9);
  check_bool "diameter positive" true (r.Experiment.diameter >= 1);
  check_bool "view sizes sane" true
    (r.Experiment.min_view >= 1 && r.Experiment.avg_view >= float_of_int r.Experiment.min_view);
  check_bool "social cost positive" true (r.Experiment.social_cost > 0.0)

let test_trials_and_summaries () =
  let cfg = Dynamics.default_config ~alpha:2.0 ~k:3 in
  let runs =
    Experiment.trials
      ~make_initial:(fun ~seed -> Experiment.initial_tree ~seed ~n:12)
      ~config:cfg ~trials:5 ~seed:100
  in
  check_int "five runs" 5 (List.length runs);
  let q = Experiment.summarize (fun r -> r.Experiment.quality) runs in
  check_int "summary n" 5 q.Ncg_stats.Summary.n;
  check_bool "mean quality >= 1" true (q.Ncg_stats.Summary.mean >= 1.0 -. 1e-9);
  let frac = Experiment.fraction (fun r -> r.Experiment.converged) runs in
  check_bool "most converge" true (frac >= 0.8)

let test_trials_deterministic () =
  let cfg = Dynamics.default_config ~alpha:1.0 ~k:2 in
  let run () =
    Experiment.trials
      ~make_initial:(fun ~seed -> Experiment.initial_tree ~seed ~n:10)
      ~config:cfg ~trials:3 ~seed:42
  in
  let a = List.map (fun r -> r.Experiment.social_cost) (run ()) in
  let b = List.map (fun r -> r.Experiment.social_cost) (run ()) in
  Alcotest.(check (list (float 1e-12))) "reproducible" a b

let test_parallel_trials_match_sequential () =
  let cfg = Dynamics.default_config ~alpha:2.0 ~k:3 in
  let make_initial ~seed = Experiment.initial_tree ~seed ~n:12 in
  let seq = Experiment.trials ~make_initial ~config:cfg ~trials:6 ~seed:77 in
  List.iter
    (fun domains ->
      let par =
        Experiment.trials_parallel ~domains ~make_initial ~config:cfg ~trials:6
          ~seed:77
      in
      Alcotest.(check (list (float 1e-12)))
        (Printf.sprintf "identical at %d domains" domains)
        (List.map (fun r -> r.Experiment.social_cost) seq)
        (List.map (fun r -> r.Experiment.social_cost) par))
    [ 1; 2; 4 ]

let test_derive_seeds () =
  let a = Experiment.derive_seeds ~seed:42 ~count:8 in
  let b = Experiment.derive_seeds ~seed:42 ~count:8 in
  check_bool "deterministic" true (a = b);
  (* A prefix of a longer stream: trial seeds don't depend on the count. *)
  let longer = Experiment.derive_seeds ~seed:42 ~count:16 in
  check_bool "prefix stable" true (Array.sub longer 0 8 = a);
  let other = Experiment.derive_seeds ~seed:43 ~count:8 in
  check_bool "seed matters" false (a = other);
  let distinct = List.sort_uniq compare (Array.to_list a) in
  check_int "all distinct" 8 (List.length distinct)

let test_derive_seeds_golden () =
  (* Frozen snapshot of the SplitMix64 stream. These values are load-
     bearing: every published sweep, every store cache key and every
     --only-cell reproduction assumes seed derivation never changes. If
     this test fails, the change breaks all existing result stores. *)
  let golden_2014 =
    [|
      -4192831650131979260;
      195712523871778755;
      2363781521631100635;
      1407460852654598280;
      1403179157520910089;
      4283057755417690474;
      1039990551353643555;
      890011278414683468;
    |]
  in
  check_bool "seed 2014 stream frozen" true
    (Experiment.derive_seeds ~seed:2014 ~count:8 = golden_2014);
  let golden_0 =
    [|
      -2152535657050944081;
      -1263085514660420108;
      487617019471545679;
      -537132696929009172;
    |]
  in
  check_bool "seed 0 stream frozen" true
    (Experiment.derive_seeds ~seed:0 ~count:4 = golden_0)

let sweep_fixture ?probes ~domains () =
  Experiment.sweep ?probes ~domains
    ~make_initial:(fun ~seed -> Experiment.initial_tree ~seed ~n:12)
    ~make_config:(fun (c : Experiment.cell) ->
      {
        (Dynamics.default_config ~alpha:c.Experiment.alpha ~k:c.Experiment.k) with
        Dynamics.collect_features = false;
      })
    ~cells:(Experiment.grid ~alphas:[ 0.5; 2.0 ] ~ks:[ 2; 3; 1000 ])
    ~trials:3 ~seed:2014 ()

let test_sweep_shape () =
  let results = sweep_fixture ~domains:1 () in
  check_int "six cells" 6 (List.length results);
  let first = List.hd results in
  check_bool "cell order row-major" true
    (first.Experiment.cell = { Experiment.alpha = 0.5; k = 2 });
  check_int "three runs per cell" 3 (List.length first.Experiment.runs);
  (* Telemetry present: the cell counted its solver work and spans one
     child per trial. *)
  check_bool "bfs counted" true
    (List.assoc "bfs.calls" first.Experiment.counters > 0);
  check_bool "best responses counted" true
    (List.assoc "best_response.calls" first.Experiment.counters > 0);
  check_int "trial spans" 3
    (List.length first.Experiment.spans.Ncg_obs.Span.children);
  check_bool "wall time positive" true (first.Experiment.wall_ns > 0L);
  (* New telemetry: histograms sampled the oracles, the GC delta counted
     the cell's allocations, and the cell knows where and when it ran. *)
  let hist name =
    List.assoc (Ncg_obs.Histogram.name name) first.Experiment.histograms
  in
  check_bool "best response latencies sampled" true
    (Ncg_obs.Histogram.count (hist Ncg_obs.Histogram.best_response) > 0);
  check_int "one sweep-cell sample" 1
    (Ncg_obs.Histogram.count (hist Ncg_obs.Histogram.sweep_cell));
  check_bool "cell allocated words" true
    (Ncg_obs.Gc_stats.allocated_words first.Experiment.gc > 0.0);
  check_bool "domain recorded" true (first.Experiment.domain >= 0);
  check_bool "start before end" true
    (first.Experiment.started_ns > 0L
    && first.Experiment.wall_ns >= first.Experiment.spans.Ncg_obs.Span.elapsed_ns)

let test_sweep_deterministic_across_domains () =
  (* The tentpole contract: same seed => byte-identical run statistics,
     per-cell counters, histogram sample counts and GC allocated words,
     whatever the fan-out. (Histogram bucket placement and GC collection
     counts are timing-dependent and deliberately excluded.) *)
  let reference = sweep_fixture ~domains:1 () in
  List.iter
    (fun domains ->
      let results = sweep_fixture ~domains () in
      List.iter2
        (fun (a : Experiment.cell_result) (b : Experiment.cell_result) ->
          let cell_check what ok =
            check_bool
              (Printf.sprintf "cell (%g,%d) %s identical at %d domains"
                 a.Experiment.cell.Experiment.alpha
                 a.Experiment.cell.Experiment.k what domains)
              true ok
          in
          cell_check "runs" (a.Experiment.runs = b.Experiment.runs);
          cell_check "counters" (a.Experiment.counters = b.Experiment.counters);
          cell_check "histogram sample counts"
            (Ncg_obs.Histogram.counts_only a.Experiment.histograms
            = Ncg_obs.Histogram.counts_only b.Experiment.histograms);
          cell_check "gc allocated words"
            (Ncg_obs.Gc_stats.allocated_words a.Experiment.gc
            = Ncg_obs.Gc_stats.allocated_words b.Experiment.gc);
          cell_check "probe series"
            (Ncg_obs.Probe.equal_snapshot a.Experiment.probes b.Experiment.probes))
        reference results)
    [ 2; 4 ]

let test_probes_toggle_and_series () =
  (* Disabling probes must not change the run statistics — the CSV and
     every downstream summary is a pure function of [runs]. *)
  let on = sweep_fixture ~domains:2 () in
  let off = sweep_fixture ~probes:false ~domains:2 () in
  List.iter2
    (fun (a : Experiment.cell_result) (b : Experiment.cell_result) ->
      check_bool "runs identical with probes off" true
        (a.Experiment.runs = b.Experiment.runs);
      check_bool "probes-off snapshot is the empty shape" true
        (Ncg_obs.Probe.equal_snapshot b.Experiment.probes
           (Ncg_obs.Probe.empty_snapshot ())))
    on off;
  (* With probes on, the exemplar trial recorded per-round series. *)
  let first = List.hd on in
  let series probe =
    List.assoc (Ncg_obs.Probe.name probe) first.Experiment.probes
  in
  check_bool "social-cost series sampled" false
    (Ncg_obs.Timeseries.is_empty (series Ncg_obs.Probe.social_cost));
  check_bool "awake-players series sampled" false
    (Ncg_obs.Timeseries.is_empty (series Ncg_obs.Probe.awake_players));
  (* Probing shifts counters (the per-round social-cost BFS), which is
     exactly why the flag participates in the cell cache key. *)
  let key probes =
    Experiment.cell_cache_key ~probes ~context:[] ~seed:1 ~trials:2 ~cell_seed:7
      { Experiment.alpha = 0.5; k = 2 }
  in
  check_bool "cache key depends on the probes flag" false (key true = key false);
  (* Cell payload codec (ncg.store.cell/5) round-trips the series. *)
  match Experiment.cell_result_of_json (Experiment.cell_result_to_json first) with
  | Ok rt ->
      check_bool "payload round-trips probe series" true
        (Ncg_obs.Probe.equal_snapshot rt.Experiment.probes first.Experiment.probes)
  | Error e -> Alcotest.failf "cell payload did not round-trip: %s" e

let test_sweep_counters_isolated_per_cell () =
  (* Counts recorded inside a sweep must not leak into an enclosing
     collector beyond the totals, and totals equal the cell sum. *)
  let results, outer =
    Ncg_obs.Metrics.collect (fun () -> sweep_fixture ~domains:2 ())
  in
  let totals = Experiment.sweep_counters results in
  (* Spawned-domain cells count into their own collectors only; the
     caller's collector sees just the chunk it ran itself, so it can be
     at most the totals. *)
  check_bool "outer <= totals" true
    (List.for_all
       (fun (name, v) ->
         match List.assoc_opt name totals with
         | Some t -> v <= t
         | None -> v = 0)
       outer);
  check_bool "totals positive" true (List.assoc "bfs.calls" totals > 0)

let test_initial_ba_ws () =
  let ba = Experiment.initial_ba ~seed:4 ~n:30 ~m:2 in
  check_bool "ba connected" true (Ncg_graph.Bfs.is_connected (Strategy.graph ba));
  check_int "ba players" 30 (Strategy.n_players ba);
  let ws = Experiment.initial_ws ~seed:4 ~n:30 ~k:4 ~beta:0.2 in
  check_bool "ws connected" true (Ncg_graph.Bfs.is_connected (Strategy.graph ws));
  check_int "ws purchases = edges" (Graph.size (Strategy.graph ws))
    (Strategy.total_bought ws)

let test_full_knowledge_view_sizes () =
  (* With k = 1000 every converged player sees everything. *)
  let s = Experiment.initial_tree ~seed:8 ~n:12 in
  let cfg = Dynamics.default_config ~alpha:2.0 ~k:1000 in
  let r = Experiment.run_one cfg s in
  check_int "min view = n" 12 r.Experiment.min_view

let () =
  Alcotest.run "experiment"
    [
      ( "setup",
        [
          Alcotest.test_case "paper grids" `Quick test_paper_grids;
          Alcotest.test_case "initial tree" `Quick test_initial_tree;
          Alcotest.test_case "initial gnp" `Quick test_initial_gnp;
          Alcotest.test_case "initial stats" `Quick test_initial_stats;
        ] );
      ( "runs",
        [
          Alcotest.test_case "run_one" `Quick test_run_one;
          Alcotest.test_case "trials + summaries" `Quick test_trials_and_summaries;
          Alcotest.test_case "determinism" `Quick test_trials_deterministic;
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_trials_match_sequential;
          Alcotest.test_case "ba/ws initials" `Quick test_initial_ba_ws;
          Alcotest.test_case "full knowledge views" `Quick test_full_knowledge_view_sizes;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "seed derivation" `Quick test_derive_seeds;
          Alcotest.test_case "seed derivation golden snapshot" `Quick
            test_derive_seeds_golden;
          Alcotest.test_case "shape + telemetry" `Quick test_sweep_shape;
          Alcotest.test_case "deterministic across domains" `Quick
            test_sweep_deterministic_across_domains;
          Alcotest.test_case "per-cell counter isolation" `Quick
            test_sweep_counters_isolated_per_cell;
          Alcotest.test_case "probes toggle + exemplar series" `Quick
            test_probes_toggle_and_series;
        ] );
    ]
