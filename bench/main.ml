(* Benchmark & reproduction harness.

   One section per table and figure of the paper's evaluation (Section 5),
   plus certifications of the theoretical constructions (Sections 3-4) and
   Bechamel micro-benchmarks of the hot kernels.

   Run everything:        dune exec bench/main.exe
   Run a few sections:    dune exec bench/main.exe -- table1 fig7 kernels
   List sections:         dune exec bench/main.exe -- list

   Scale note: the paper runs 20 seeds per cell over a 15x12 (alpha, k)
   grid with n up to 200 (~36 000 dynamics, Gurobi as the best-response
   oracle). The same code paths run here on a scaled-down grid so the
   whole suite finishes in minutes on a laptop; EXPERIMENTS.md records the
   grids used and compares shapes against the paper. *)

module Experiment = Ncg.Experiment
module Dynamics = Ncg.Dynamics
module Strategy = Ncg.Strategy
module Game = Ncg.Game
module Lke = Ncg.Lke
module Bounds = Ncg.Bounds
module Summary = Ncg_stats.Summary
module Graph = Ncg_graph.Graph
module Metrics = Ncg_graph.Metrics
module Torus_grid = Ncg_gen.Torus_grid

let base_seed = 2014
let node_budget = 50_000

let config ?(variant = Game.Max) ~alpha ~k () =
  {
    (Dynamics.default_config ~alpha ~k) with
    Dynamics.variant;
    solver = `Budgeted node_budget;
    collect_features = false;
  }

let tree_cell ~n ~alpha ~k ~trials =
  Experiment.trials
    ~make_initial:(fun ~seed -> Experiment.initial_tree ~seed ~n)
    ~config:(config ~alpha ~k ()) ~trials ~seed:base_seed

let gnp_cell ~n ~p ~alpha ~k ~trials =
  Experiment.trials
    ~make_initial:(fun ~seed -> Experiment.initial_gnp ~seed ~n ~p)
    ~config:(config ~alpha ~k ()) ~trials ~seed:base_seed

let summary_str f runs = Summary.to_string (Experiment.summarize f runs)
let summary_mean f runs = (Experiment.summarize f runs).Summary.mean
let fi = float_of_int

let section_header id title = Printf.printf "\n=== %s: %s ===\n%!" id title

let chart ?logx series =
  print_string
    (Ncg_stats.Ascii_chart.render ?logx ~width:56 ~height:14
       (List.map
          (fun (label, points) -> { Ncg_stats.Ascii_chart.label; points })
          series))

(* --- Table I ---------------------------------------------------------------- *)

let table1 () =
  section_header "table1" "random tree statistics (paper Table I)";
  let trials = 20 in
  Printf.printf "%6s %18s %18s %22s\n" "n" "Diameter" "Max. degree" "Max. bought edges";
  List.iter
    (fun n ->
      let stats =
        List.init trials (fun i ->
            Experiment.initial_stats
              (Experiment.initial_tree ~seed:(base_seed + (7919 * (i + 1))) ~n))
      in
      let s f = Summary.to_string (Summary.of_floats (Array.of_list (List.map f stats))) in
      Printf.printf "%6d %18s %18s %22s\n" n
        (s (fun x -> fi x.Experiment.diameter))
        (s (fun x -> fi x.Experiment.max_degree))
        (s (fun x -> fi x.Experiment.max_bought)))
    [ 20; 30; 50; 70; 100; 200 ]

(* --- Table II --------------------------------------------------------------- *)

let table2 () =
  section_header "table2" "Erdos-Renyi statistics (paper Table II)";
  let trials = 20 in
  Printf.printf "%5s %7s %18s %14s %15s %18s\n" "n" "p" "Edges" "Diameter" "Max. degree"
    "Max. bought";
  List.iter
    (fun (n, p) ->
      let stats =
        List.init trials (fun i ->
            Experiment.initial_stats
              (Experiment.initial_gnp ~seed:(base_seed + (7919 * (i + 1))) ~n ~p))
      in
      let s f = Summary.to_string (Summary.of_floats (Array.of_list (List.map f stats))) in
      Printf.printf "%5d %7.3f %18s %14s %15s %18s\n" n p
        (s (fun x -> fi x.Experiment.edges))
        (s (fun x -> fi x.Experiment.diameter))
        (s (fun x -> fi x.Experiment.max_degree))
        (s (fun x -> fi x.Experiment.max_bought)))
    [ (100, 0.06); (100, 0.1); (100, 0.2); (200, 0.035); (200, 0.05); (200, 0.1) ]

(* --- Figures 3 and 4: the theory tables -------------------------------------- *)

let fig3 () =
  section_header "fig3" "MaxNCG PoA bound regions (paper Figure 3)";
  print_string
    (Bounds.max_table ~n:100_000
       ~alphas:[ 0.5; 1.0; 2.0; 5.0; 17.0; 100.0; 10_000.0 ]
       ~ks:[ 1; 2; 3; 5; 8; 16; 64; 1000 ])

let fig4 () =
  section_header "fig4" "SumNCG PoA bound regions (paper Figure 4)";
  print_string
    (Bounds.sum_table ~n:100_000
       ~alphas:[ 0.5; 2.0; 40.0; 500.0; 250_000.0; 10_000_000.0 ]
       ~ks:[ 1; 2; 3; 5; 10; 50 ])

(* --- Figure 5: view sizes at equilibrium -------------------------------------- *)

let fig5 () =
  section_header "fig5"
    "min/avg view size at equilibrium vs alpha and k (paper Figure 5; trees n=60)";
  let n = 60 and trials = 5 in
  let ks = [ 2; 3; 4; 5; 7; 1000 ] in
  let alphas = [ 0.1; 0.5; 1.0; 2.0; 5.0; 10.0 ] in
  Printf.printf "%8s %6s %18s %18s\n" "alpha" "k" "avg view size" "min view size";
  let series = List.map (fun k -> (Printf.sprintf "k=%d" k, ref [])) ks in
  List.iter
    (fun alpha ->
      List.iter2
        (fun k (_, points) ->
          let runs = tree_cell ~n ~alpha ~k ~trials in
          let avg = summary_mean (fun r -> r.Experiment.avg_view) runs in
          points := (alpha, avg) :: !points;
          Printf.printf "%8g %6d %18s %18s\n%!" alpha k
            (summary_str (fun r -> r.Experiment.avg_view) runs)
            (summary_str (fun r -> fi r.Experiment.min_view) runs))
        ks series)
    alphas;
  Printf.printf "average view size vs alpha:\n";
  chart (List.map (fun (label, points) -> (label, List.rev !points)) series)

(* --- Figure 6: quality vs n ----------------------------------------------------- *)

let fig6 () =
  section_header "fig6"
    "quality of equilibrium vs n for alpha in {1, 10} (paper Figure 6; trees)";
  let trials = 5 in
  let ks = [ 2; 3; 4; 5; 1000 ] in
  let ns = [ 20; 30; 50; 70; 100 ] in
  List.iter
    (fun alpha ->
      Printf.printf "alpha = %g\n" alpha;
      Printf.printf "%6s" "n";
      List.iter (fun k -> Printf.printf "%16s" (Printf.sprintf "k=%d" k)) ks;
      print_newline ();
      let series = List.map (fun k -> (Printf.sprintf "k=%d" k, ref [])) ks in
      List.iter
        (fun n ->
          Printf.printf "%6d" n;
          List.iter2
            (fun k (_, points) ->
              let runs = tree_cell ~n ~alpha ~k ~trials in
              let mean = summary_mean (fun r -> r.Experiment.quality) runs in
              points := (fi n, mean) :: !points;
              Printf.printf "%16s" (summary_str (fun r -> r.Experiment.quality) runs))
            ks series;
          print_newline ();
          flush stdout)
        ns;
      chart (List.map (fun (label, points) -> (label, List.rev !points)) series))
    [ 1.0; 10.0 ]

(* --- Figure 7: quality vs k with the theoretical trend ---------------------------- *)

let fig7 () =
  section_header "fig7"
    "quality of equilibrium vs k at alpha=2, with the theory trend (paper Figure 7)";
  let trials = 5 in
  let ks = [ 2; 3; 4; 5; 6; 7; 10 ] in
  Printf.printf "trees:\n%10s" "n\\k";
  List.iter (fun k -> Printf.printf "%14d" k) ks;
  print_newline ();
  let tree_series = ref [] in
  List.iter
    (fun n ->
      Printf.printf "%10d" n;
      let points = ref [] in
      List.iter
        (fun k ->
          let runs = tree_cell ~n ~alpha:2.0 ~k ~trials in
          points := (fi k, summary_mean (fun r -> r.Experiment.quality) runs) :: !points;
          Printf.printf "%14s" (summary_str (fun r -> r.Experiment.quality) runs))
        ks;
      tree_series := (Printf.sprintf "trees n=%d" n, List.rev !points) :: !tree_series;
      print_newline ();
      flush stdout)
    [ 30; 50; 100 ];
  (* G(n, 0.2), the paper's right panel (scaled from n=100 to n=60). *)
  let n = 60 in
  Printf.printf "%10s" (Printf.sprintf "G(%d,.2)" n);
  List.iter
    (fun k ->
      let runs = gnp_cell ~n ~p:0.2 ~alpha:2.0 ~k ~trials in
      Printf.printf "%14s" (summary_str (fun r -> r.Experiment.quality) runs))
    ks;
  print_newline ();
  (* Theoretical benchmark curve, anchored at k=2 like the paper's red line. *)
  let first_quality =
    (Experiment.summarize
       (fun r -> r.Experiment.quality)
       (tree_cell ~n:100 ~alpha:2.0 ~k:2 ~trials))
      .Summary.mean
  in
  let trend =
    Bounds.fig7_trend ~n:100 ~alpha:2.0 ~anchor_k:2 ~anchor_value:first_quality
  in
  Printf.printf "%10s" "f(k)";
  List.iter (fun k -> Printf.printf "%14.2f" (trend k)) ks;
  print_newline ();
  chart
    (List.rev
       (("f(k) trend", List.map (fun k -> (fi k, trend k)) ks) :: !tree_series))

(* --- Figures 8 and 9: degrees, bought edges, fairness ----------------------------- *)

let fig89 () =
  section_header "fig8+fig9"
    "max degree / max bought edges / unfairness vs alpha (paper Figures 8-9; G(60,0.1))";
  let n = 60 and p = 0.1 and trials = 4 in
  let ks = [ 2; 3; 5; 1000 ] in
  let alphas = [ 0.1; 0.3; 0.5; 1.0; 1.5; 3.0 ] in
  let cells =
    List.map
      (fun alpha ->
        (alpha, List.map (fun k -> (k, gnp_cell ~n ~p ~alpha ~k ~trials)) ks))
      alphas
  in
  let print_metric ?(with_chart = false) title f =
    Printf.printf "%s:\n%8s" title "alpha";
    List.iter (fun k -> Printf.printf "%16s" (Printf.sprintf "k=%d" k)) ks;
    print_newline ();
    List.iter
      (fun (alpha, row) ->
        Printf.printf "%8g" alpha;
        List.iter (fun (_, runs) -> Printf.printf "%16s" (summary_str f runs)) row;
        print_newline ())
      cells;
    if with_chart then
      chart
        (List.map
           (fun k ->
             ( Printf.sprintf "k=%d" k,
               List.map
                 (fun (alpha, row) -> (alpha, summary_mean f (List.assoc k row)))
                 cells ))
           ks);
    flush stdout
  in
  print_metric "max degree (Figure 8, left)" (fun r -> fi r.Experiment.max_degree);
  print_metric "max bought edges (Figure 8, right)" (fun r -> fi r.Experiment.max_bought);
  print_metric ~with_chart:true "unfairness ratio (Figure 9)" (fun r ->
      r.Experiment.unfairness)

(* --- Figure 10: convergence time ---------------------------------------------------- *)

let fig10 () =
  section_header "fig10" "rounds to convergence (paper Figure 10; trees)";
  let trials = 5 in
  let ks = [ 2; 3; 5; 10; 1000 ] in
  Printf.printf "rounds vs alpha (n = 60):\n%8s" "alpha";
  List.iter (fun k -> Printf.printf "%14s" (Printf.sprintf "k=%d" k)) ks;
  print_newline ();
  List.iter
    (fun alpha ->
      Printf.printf "%8g" alpha;
      List.iter
        (fun k ->
          let runs = tree_cell ~n:60 ~alpha ~k ~trials in
          Printf.printf "%14s" (summary_str (fun r -> fi r.Experiment.rounds) runs))
        ks;
      print_newline ();
      flush stdout)
    [ 0.1; 0.5; 1.0; 2.0; 5.0; 10.0 ];
  Printf.printf "rounds vs n (alpha = 2):\n%8s" "n";
  List.iter (fun k -> Printf.printf "%14s" (Printf.sprintf "k=%d" k)) ks;
  print_newline ();
  List.iter
    (fun n ->
      Printf.printf "%8d" n;
      List.iter
        (fun k ->
          let runs = tree_cell ~n ~alpha:2.0 ~k ~trials in
          Printf.printf "%14s" (summary_str (fun r -> fi r.Experiment.rounds) runs))
        ks;
      print_newline ();
      flush stdout)
    [ 20; 50; 100; 150 ];
  (* Convergence/cycling tally across every cell of a small sweep. *)
  let total = ref 0 and cycles = ref 0 in
  List.iter
    (fun alpha ->
      List.iter
        (fun k ->
          List.iter
            (fun r ->
              incr total;
              if r.Experiment.cycled then incr cycles)
            (tree_cell ~n:40 ~alpha ~k ~trials:3))
        ks)
    [ 0.5; 2.0 ];
  Printf.printf "best-response cycles observed: %d / %d dynamics\n" !cycles !total

(* --- Constructions (Lemmas 3.1, 3.2; Theorems 3.12, 4.2) -------------------------------- *)

let lemma31 () =
  section_header "lemma31" "cycle lower bound (Lemma 3.1)";
  Printf.printf "%6s %6s %8s %10s %14s %14s\n" "n" "k" "alpha" "LKE?" "quality"
    "Omega(n/(1+a))";
  List.iter
    (fun (n, k, alpha) ->
      let s = Strategy.of_buys ~n (Ncg_gen.Classic.cycle_buys n) in
      let lke = Lke.is_lke_max ~alpha ~k s in
      let quality =
        match Game.quality Game.Max ~alpha s with Some q -> q | None -> nan
      in
      Printf.printf "%6d %6d %8g %10b %14.2f %14.2f\n%!" n k alpha lke quality
        (Bounds.lb_cycle ~n ~alpha))
    [ (24, 2, 1.0); (48, 3, 2.0); (96, 4, 3.0); (192, 5, 4.0) ]

let lemma32 () =
  section_header "lemma32" "high-girth lower bound via PG(2,q) (Lemma 3.2, k=2)";
  Printf.printf "%4s %6s %8s %8s %10s %14s %16s\n" "q" "n" "edges" "girth" "LKE?"
    "quality" "Omega(n^(1/2))";
  List.iter
    (fun q ->
      let g = Ncg_gen.Projective_plane.incidence q in
      let np = Ncg_gen.Projective_plane.plane_size q in
      let buys =
        List.map (fun (u, v) -> if u < np then (u, v) else (v, u)) (Graph.edges g)
      in
      let n = Graph.order g in
      let s = Strategy.of_buys ~n buys in
      let lke = Lke.is_lke_max ~alpha:1.5 ~k:2 s in
      let quality =
        match Game.quality Game.Max ~alpha:1.5 s with Some q -> q | None -> nan
      in
      let girth = match Ncg_graph.Girth.girth g with Some g -> g | None -> -1 in
      Printf.printf "%4d %6d %8d %8d %10b %14.2f %16.2f\n%!" q n (Graph.size g) girth
        lke quality
        (Bounds.lb_girth ~n ~k:2))
    [ 2; 3; 5 ]

let thm312 () =
  section_header "thm312" "stretched torus equilibrium for MaxNCG (Theorem 3.12)";
  Printf.printf "%6s %6s %8s %8s %10s %14s %14s\n" "n" "k" "alpha" "diam" "LKE?"
    "quality" "theory LB";
  List.iter
    (fun (alpha, k, deltas) ->
      let ell = int_of_float (ceil alpha) in
      let t = Torus_grid.closed ~d:2 ~ell ~deltas in
      let n = Graph.order t.Torus_grid.graph in
      let s = Strategy.of_buys ~n t.Torus_grid.buys in
      let lke = Lke.is_lke_max ~alpha ~k s in
      let quality =
        match Game.quality Game.Max ~alpha s with Some q -> q | None -> nan
      in
      let diam =
        match Metrics.diameter t.Torus_grid.graph with Some d -> d | None -> -1
      in
      Printf.printf "%6d %6d %8g %8d %10b %14.2f %14.2f\n%!" n k alpha diam lke quality
        (Bounds.lb_torus ~n ~alpha ~k))
    [
      (2.0, 2, [| 2; 5 |]);
      (2.0, 2, [| 2; 10 |]);
      (2.0, 2, [| 2; 20 |]);
      (2.0, 4, [| 3; 8 |]);
      (3.0, 3, [| 2; 10 |]);
    ]

let thm42 () =
  section_header "thm42" "stretched torus equilibrium for SumNCG (Theorem 4.2)";
  Printf.printf "%6s %6s %8s %12s %14s %14s\n" "n" "k" "alpha" "Sum-LKE?" "quality"
    "Omega(n/k)";
  List.iter
    (fun (alpha, delta2) ->
      let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 2; delta2 |] in
      let n = Graph.order t.Torus_grid.graph in
      let s = Strategy.of_buys ~n t.Torus_grid.buys in
      (* k = 2: views are small, the exhaustive check is exact. *)
      let lke = Lke.is_lke_sum_exact ~alpha ~k:2 s in
      let quality =
        match Game.quality Game.Sum ~alpha s with Some q -> q | None -> nan
      in
      Printf.printf "%6d %6d %8g %12b %14.2f %14.2f\n%!" n 2 alpha lke quality
        (fi n /. 2.0))
    [ (33.0, 5); (33.0, 10); (50.0, 15) ]

(* --- Robustness across initial classes (beyond the paper) ------------------------------------ *)

let robustness () =
  section_header "robustness"
    "equilibrium quality by initial graph class (beyond the paper: trees and G(n,p) \
     from Section 5 plus scale-free and small-world starts), n=50, alpha=2, 4 seeds";
  let n = 50 and trials = 4 in
  let classes =
    [
      ("random tree", fun ~seed -> Experiment.initial_tree ~seed ~n);
      ("G(n, 0.1)", fun ~seed -> Experiment.initial_gnp ~seed ~n ~p:0.1);
      ("Barabasi-Albert m=2", fun ~seed -> Experiment.initial_ba ~seed ~n ~m:2);
      ("Watts-Strogatz k=4 b=.2", fun ~seed -> Experiment.initial_ws ~seed ~n ~k:4 ~beta:0.2);
    ]
  in
  Printf.printf "%-26s" "class";
  let ks = [ 2; 3; 5; 1000 ] in
  List.iter (fun k -> Printf.printf "%16s" (Printf.sprintf "k=%d" k)) ks;
  Printf.printf "%14s\n" "rounds(k=3)";
  List.iter
    (fun (name, make_initial) ->
      Printf.printf "%-26s" name;
      let rounds3 = ref "" in
      List.iter
        (fun k ->
          let runs =
            Experiment.trials ~make_initial ~config:(config ~alpha:2.0 ~k ()) ~trials
              ~seed:base_seed
          in
          if k = 3 then rounds3 := summary_str (fun r -> fi r.Experiment.rounds) runs;
          Printf.printf "%16s" (summary_str (fun r -> r.Experiment.quality) runs))
        ks;
      Printf.printf "%14s\n%!" !rounds3)
    classes

(* --- Exhaustive tiny-game PoA ---------------------------------------------------------------- *)

let tinypoa () =
  section_header "tinypoa"
    "exact PoA on exhaustively analyzed tiny games: every NE is an LKE and \
     PoA_LKE >= PoA_NE (Section 1's structural claim, machine-checked)";
  Printf.printf "%8s %8s %6s %6s %10s %10s %12s %12s %10s\n" "variant" "alpha" "k" "n"
    "#NE" "#LKE" "PoA(NE)" "PoA(LKE)" "NE<=LKE";
  List.iter
    (fun (variant, alpha, k, n) ->
      let a = Ncg.Enumerate.analyze variant ~alpha ~k ~n in
      let fmt = function Some x -> Printf.sprintf "%.3f" x | None -> "-" in
      Printf.printf "%8s %8g %6d %6d %10d %10d %12s %12s %10b\n%!"
        (Game.variant_to_string variant)
        alpha k n
        (List.length a.Ncg.Enumerate.nash)
        (List.length a.Ncg.Enumerate.lke)
        (fmt (Ncg.Enumerate.poa_nash a))
        (fmt (Ncg.Enumerate.poa_lke a))
        (Ncg.Enumerate.nash_subset_of_lke a))
    [
      (Game.Max, 0.5, 1, 3);
      (Game.Max, 2.0, 1, 3);
      (Game.Max, 2.0, 2, 3);
      (Game.Max, 2.0, 1, 4);
      (Game.Max, 2.0, 2, 4);
      (Game.Max, 2.0, 10, 4);
      (Game.Sum, 2.0, 1, 4);
      (Game.Sum, 2.0, 2, 4);
    ]

(* --- Dynamics-mode ablation (beyond the paper) ---------------------------------------------- *)

let modes () =
  section_header "modes"
    "dynamics ablation: exact best responses (the paper) vs single-move better responses, \
     round-robin vs random sweeps (trees n=60, alpha=1, k=3, 5 seeds)";
  let trials = 5 and n = 60 and alpha = 1.0 and k = 3 in
  Printf.printf "%-28s %14s %14s %14s\n" "mode" "quality" "rounds" "moves";
  List.iter
    (fun (name, tweak) ->
      let cfg = tweak (config ~alpha ~k ()) in
      let runs =
        Experiment.trials
          ~make_initial:(fun ~seed -> Experiment.initial_tree ~seed ~n)
          ~config:cfg ~trials ~seed:base_seed
      in
      Printf.printf "%-28s %14s %14s %14s\n%!" name
        (summary_str (fun r -> r.Experiment.quality) runs)
        (summary_str (fun r -> fi r.Experiment.rounds) runs)
        (summary_str (fun r -> fi r.Experiment.total_moves) runs))
    [
      ("best response, round robin", Fun.id);
      ( "best response, random sweep",
        fun c -> { c with Dynamics.order = `Random_sweep 7 } );
      ( "single moves, round robin",
        fun c -> { c with Dynamics.response = `Local_moves } );
      ( "single moves, random sweep",
        fun c ->
          { c with Dynamics.response = `Local_moves; order = `Random_sweep 7 } );
    ]

(* --- SumNCG dynamics (the paper's open experimental direction) ------------------------------ *)

let sumdyn () =
  section_header "sumdyn"
    "SumNCG best-response dynamics (not in the paper: Section 5 restricts to MaxNCG \
     for tractability; our branch-and-bound engine makes small instances exact)";
  let trials = 4 in
  Printf.printf "%6s %6s %8s %14s %14s %12s\n" "n" "k" "alpha" "quality" "rounds"
    "conv.frac";
  List.iter
    (fun (n, k, alpha) ->
      let cfg =
        {
          (config ~variant:Game.Sum ~alpha ~k ()) with
          Dynamics.sum_mode = `Branch_and_bound 34;
          max_rounds = 60;
        }
      in
      let runs =
        Experiment.trials
          ~make_initial:(fun ~seed -> Experiment.initial_tree ~seed ~n)
          ~config:cfg ~trials ~seed:base_seed
      in
      Printf.printf "%6d %6d %8g %14s %14s %12.2f\n%!" n k alpha
        (summary_str (fun r -> r.Experiment.quality) runs)
        (summary_str (fun r -> fi r.Experiment.rounds) runs)
        (Experiment.fraction (fun r -> r.Experiment.converged) runs))
    [ (20, 2, 1.0); (20, 2, 3.0); (30, 2, 2.0); (20, 3, 2.0) ]

(* --- Solver ablation ----------------------------------------------------------------------- *)

let ablation () =
  section_header "ablation"
    "best-response solver ablation: exact vs budgeted B&B vs greedy (G(100,0.1), alpha=0.1, full view)";
  let make () = Experiment.initial_gnp ~seed:1 ~n:100 ~p:0.1 in
  Printf.printf "%-16s %10s %10s %10s %10s\n" "solver" "time(s)" "rounds" "moves" "quality";
  List.iter
    (fun (name, solver) ->
      let cfg =
        {
          (Dynamics.default_config ~alpha:0.1 ~k:1000) with
          Dynamics.solver;
          collect_features = false;
        }
      in
      let t0 = Ncg_obs.Clock.now_ns () in
      let r = Experiment.run_one cfg (make ()) in
      Printf.printf "%-16s %10.2f %10d %10d %10.3f\n%!" name
        (Ncg_obs.Clock.ns_to_s (Ncg_obs.Clock.elapsed_ns ~since:t0))
        r.Experiment.rounds r.Experiment.total_moves r.Experiment.quality)
    [
      ("exact", `Exact);
      ("budget 50k", `Budgeted 50_000);
      ("budget 2k", `Budgeted 2_000);
      ("greedy", `Greedy);
    ]

(* Per-cell JSON shared by the instrumented sweeps below; everything the
   bench gate (bin/ncg_bench_diff) keys on — allocated words and the
   oracle-call counters — lives under "gc" and "counters". *)
let bench_cell_json (r : Experiment.cell_result) =
  let module Json = Ncg_obs.Json in
  let mean f = (Experiment.summarize f r.Experiment.runs).Summary.mean in
  Json.Obj
    [
      ("alpha", Json.Float r.Experiment.cell.Experiment.alpha);
      ("k", Json.Int r.Experiment.cell.Experiment.k);
      ("wall_seconds", Json.Float (Ncg_obs.Clock.ns_to_s r.Experiment.wall_ns));
      ("domain", Json.Int r.Experiment.domain);
      ("counters", Ncg_obs.Metrics.to_json r.Experiment.counters);
      ("histograms", Ncg_obs.Histogram.to_json r.Experiment.histograms);
      ("gc", Ncg_obs.Gc_stats.to_json r.Experiment.gc);
      ( "converged_frac",
        Json.Float
          (Experiment.fraction (fun x -> x.Experiment.converged) r.Experiment.runs)
      );
      ("rounds_mean", Json.Float (mean (fun x -> fi x.Experiment.rounds)));
      ("quality_mean", Json.Float (mean (fun x -> x.Experiment.quality)));
      ("probes", Ncg_obs.Probe.to_json r.Experiment.probes);
    ]

(* --- Instrumented parallel experiment sweep ------------------------------------------------ *)

(* Runs one (alpha, k) sweep twice — sequentially and fanned out over
   domains — checks the results are identical (the engine's determinism
   contract), and writes BENCH_experiment.json: per-cell wall time and
   hot-path counters plus the 1-domain vs n-domain speedup, so CI can
   track the perf trajectory run over run.

   Env knobs (for CI):
     NCG_BENCH_SMOKE=1     tiny grid, finishes in seconds
     NCG_BENCH_OUT=PATH    output path (default BENCH_experiment.json)
     NCG_BENCH_TRACE=PATH  Chrome trace of the parallel sweep
                           (default BENCH_experiment_trace.json) *)

let experiment () =
  section_header "experiment" "instrumented parallel sweep + BENCH_experiment.json";
  let smoke = Sys.getenv_opt "NCG_BENCH_SMOKE" <> None in
  let out = Option.value (Sys.getenv_opt "NCG_BENCH_OUT") ~default:"BENCH_experiment.json" in
  let trace_out =
    Option.value (Sys.getenv_opt "NCG_BENCH_TRACE")
      ~default:"BENCH_experiment_trace.json"
  in
  let n = if smoke then 20 else 50 in
  let trials = if smoke then 2 else 5 in
  let alphas = if smoke then [ 0.5; 2.0 ] else [ 0.5; 1.0; 2.0; 5.0 ] in
  let ks = if smoke then [ 2; 1000 ] else [ 2; 3; 5; 1000 ] in
  let cells = Experiment.grid ~alphas ~ks in
  let make_initial ~seed = Experiment.initial_tree ~seed ~n in
  let make_config (c : Experiment.cell) =
    config ~alpha:c.Experiment.alpha ~k:c.Experiment.k ()
  in
  let timed domains =
    let t0 = Ncg_obs.Clock.now_ns () in
    let results =
      Experiment.sweep ~domains ~make_initial ~make_config ~cells ~trials
        ~seed:base_seed ()
    in
    (results, Ncg_obs.Clock.ns_to_s (Ncg_obs.Clock.elapsed_ns ~since:t0))
  in
  let seq, seq_wall = timed 1 in
  let fan_domains = max 2 (Domain.recommended_domain_count ()) in
  let par, par_wall = timed fan_domains in
  (* The full determinism contract: runs, counters, histogram sample
     counts and GC allocated words (bucket placement and collection
     counts are timing-dependent, so they are excluded). *)
  let same_results tag a b =
    List.for_all2
      (fun (a : Experiment.cell_result) (b : Experiment.cell_result) ->
        let check name ok =
          if not ok then
            Printf.printf "  DIVERGED (%s) alpha=%g k=%d: %s\n%!" tag
              a.Experiment.cell.Experiment.alpha a.Experiment.cell.Experiment.k
              name;
          ok
        in
        check "runs" (a.Experiment.runs = b.Experiment.runs)
        && check "counters" (a.Experiment.counters = b.Experiment.counters)
        && check "histogram counts"
             (Ncg_obs.Histogram.counts_only a.Experiment.histograms
             = Ncg_obs.Histogram.counts_only b.Experiment.histograms)
        && check "gc allocated words"
             (Ncg_obs.Gc_stats.allocated_words a.Experiment.gc
             = Ncg_obs.Gc_stats.allocated_words b.Experiment.gc)
        && check "probe series"
             (Ncg_obs.Probe.equal_snapshot a.Experiment.probes b.Experiment.probes))
      a b
  in
  let identical = same_results "parallel vs sequential" seq par in
  let speedup = seq_wall /. par_wall in
  (* Store round-trip: populate a fresh store (all misses), then rerun the
     same sweep against it (all hits — no dynamics run at all) and check
     the cached pass returns the very same results. *)
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ()) "ncg_bench_store"
  in
  List.iter
    (fun f ->
      let p = Filename.concat store_dir f in
      if Sys.file_exists p then Sys.remove p)
    [ "records.log"; "MANIFEST.json" ];
  let store_context = [ ("bench", Ncg_obs.Json.String "experiment") ] in
  let store_pass () =
    Ncg_store.Store.with_dir store_dir (fun store ->
        let t0 = Ncg_obs.Clock.now_ns () in
        let results =
          Experiment.sweep ~domains:fan_domains ~store ~store_context
            ~make_initial ~make_config ~cells ~trials ~seed:base_seed ()
        in
        ( results,
          Ncg_obs.Clock.ns_to_s (Ncg_obs.Clock.elapsed_ns ~since:t0),
          Ncg_store.Store.stats store ))
  in
  let populated, populate_wall, populate_stats = store_pass () in
  let cached, cached_wall, cached_stats = store_pass () in
  (* Supervised-executor overhead: the same grid through a bare
     Parallel.init of run_cell (no work queue, no retry machinery, no
     arming) vs Experiment.sweep (now routed through the supervised
     executor). Informational — recorded against a 5% target, not
     gated, because a smoke grid's wall time is noise-dominated. *)
  let cell_seeds =
    Experiment.derive_seeds ~seed:base_seed ~count:(List.length cells)
  in
  let cell_arr = Array.of_list cells in
  let timed_thunk f =
    let t0 = Ncg_obs.Clock.now_ns () in
    let r = f () in
    (r, Ncg_obs.Clock.ns_to_s (Ncg_obs.Clock.elapsed_ns ~since:t0))
  in
  let baseline, baseline_wall =
    timed_thunk (fun () ->
        Ncg_util.Parallel.init ~domains:fan_domains (Array.length cell_arr)
          (fun i ->
            Experiment.run_cell ~make_initial ~make_config ~trials
              ~cell_seed:cell_seeds.(i) cell_arr.(i))
        [@lint.allow
          "P2"
            "cell_arr and cell_seeds are fully built before the fan-out and \
             only read by the workers, each at its own index; no domain \
             writes them"])
  in
  let supervised, supervised_wall = timed fan_domains in
  (* GC words are excluded here: under the executor a cancellation
     control is already installed, so the per-move step-budget scope
     reuses it, while the bare baseline allocates one per move — a
     deterministic, harness-only difference. runs/counters/histogram
     counts must still agree exactly. *)
  let supervised_ok =
    List.for_all2
      (fun (a : Experiment.cell_result) (b : Experiment.cell_result) ->
        a.Experiment.runs = b.Experiment.runs
        && a.Experiment.counters = b.Experiment.counters
        && Ncg_obs.Histogram.counts_only a.Experiment.histograms
           = Ncg_obs.Histogram.counts_only b.Experiment.histograms)
      baseline supervised
  in
  let overhead_frac = (supervised_wall -. baseline_wall) /. baseline_wall in
  let store_ok =
    same_results "store populate vs sequential" seq populated
    && same_results "store cached vs sequential" seq cached
    && populate_stats.Ncg_store.Store.misses = List.length cells
    && cached_stats.Ncg_store.Store.hits = List.length cells
    && cached_stats.Ncg_store.Store.misses = 0
  in
  Printf.printf "%-30s %d cells x %d trials, n=%d%s\n" "grid"
    (List.length cells) trials n (if smoke then " (smoke)" else "");
  Printf.printf "%-30s %.2fs\n" "sequential (1 domain)" seq_wall;
  Printf.printf "%-30s %.2fs (%d domains, speedup %.2fx)\n" "parallel" par_wall
    fan_domains speedup;
  Printf.printf "%-30s %b\n" "parallel == sequential" identical;
  Printf.printf "%-30s %.2fs populate, %.2fs cached (%d hits)\n" "store round-trip"
    populate_wall cached_wall cached_stats.Ncg_store.Store.hits;
  Printf.printf "%-30s %b\n" "store cached == sequential" store_ok;
  Printf.printf "%-30s %.2fs bare, %.2fs supervised (overhead %+.1f%%)\n"
    "supervised overhead" baseline_wall supervised_wall (100. *. overhead_frac);
  Printf.printf "%-30s %b\n" "supervised == bare parallel" supervised_ok;
  if not identical then failwith "experiment: parallel sweep diverged from sequential";
  if not store_ok then failwith "experiment: store round-trip diverged";
  if not supervised_ok then
    failwith "experiment: supervised sweep diverged from bare Parallel.init";
  let module Json = Ncg_obs.Json in
  Json.to_file out
    (Json.Obj
       [
         ("schema", Json.String Ncg_obs.Schema.bench_experiment);
         ("smoke", Json.Bool smoke);
         ("seed", Json.Int base_seed);
         ("class", Json.String "tree");
         ("n", Json.Int n);
         ("trials", Json.Int trials);
         ("cells", Json.List (List.map bench_cell_json par));
         ( "totals",
           Json.Obj
             [
               ("wall_seconds_1_domain", Json.Float seq_wall);
               ("wall_seconds_parallel", Json.Float par_wall);
               ("parallel_domains", Json.Int fan_domains);
               ("speedup", Json.Float speedup);
               ("deterministic", Json.Bool identical);
               ( "store",
                 Json.Obj
                   [
                     ("populate_wall_seconds", Json.Float populate_wall);
                     ("cached_wall_seconds", Json.Float cached_wall);
                     ("cached_matches", Json.Bool store_ok);
                     ( "stats",
                       Ncg_store.Store.stats_to_json cached_stats );
                   ] );
               ( "supervised_overhead",
                 Json.Obj
                   [
                     ("baseline_wall_seconds", Json.Float baseline_wall);
                     ("supervised_wall_seconds", Json.Float supervised_wall);
                     ("overhead_frac", Json.Float overhead_frac);
                     ("target_frac", Json.Float 0.05);
                     ("deterministic", Json.Bool supervised_ok);
                     ("domains", Json.Int fan_domains);
                   ] );
               ("counters", Ncg_obs.Metrics.to_json (Experiment.sweep_counters par));
               ( "histograms",
                 Ncg_obs.Histogram.to_json (Experiment.sweep_histograms par) );
               ("gc", Ncg_obs.Gc_stats.to_json (Experiment.sweep_gc par));
             ] );
       ]);
  Printf.printf "wrote %s\n%!" out;
  (* Chrome trace of the parallel run: one Perfetto track per domain. *)
  let trace = Ncg_obs.Chrome_trace.create ~process_name:"ncg_bench" () in
  List.iter
    (fun (r : Experiment.cell_result) ->
      let tid = r.Experiment.domain in
      Ncg_obs.Chrome_trace.add_span_tree trace ~tid r.Experiment.spans;
      Ncg_obs.Chrome_trace.add_counter trace ~tid
        ~ts_ns:(Int64.add r.Experiment.started_ns r.Experiment.wall_ns)
        ~name:"gc allocated words"
        [ ("words", Ncg_obs.Gc_stats.allocated_words r.Experiment.gc) ])
    par;
  Ncg_obs.Chrome_trace.to_file trace_out trace;
  Printf.printf "wrote %s (%d events)\n%!" trace_out
    (Ncg_obs.Chrome_trace.event_count trace);
  (* Per-cell counter profile: where the solver work concentrates. *)
  print_string (Ncg_obs.Metrics.to_markdown (Experiment.sweep_counters par));
  (* Latency profile of the whole sweep. *)
  print_string (Ncg_obs.Histogram.to_markdown (Experiment.sweep_histograms par))

(* --- The paper's full (alpha, k) grid ------------------------------------------------------ *)

(* Section 5 of the paper sweeps the full 15x12 (alpha, k) grid at 20
   seeds per cell (with Gurobi as the best-response oracle). The seed
   engine could only afford scaled-down slices of that grid in CI; the
   CSR + bitset engine runs the whole thing, so this section holds it to
   that scale on Table I's n=100 random trees and records per-cell wall
   time, solver counters and GC allocated words for the bench gate.

   Env knobs (for CI):
     NCG_BENCH_FULLGRID_OUT=PATH  output path (default BENCH_fullgrid.json)
     NCG_BENCH_FULLGRID_N=N       vertex count (default 100)
     NCG_BENCH_FULLGRID_TRIALS=T  seeds per cell (default 20) *)

let fullgrid () =
  section_header "fullgrid"
    "paper-scale sweep: full 15x12 (alpha, k) grid, 20 seeds (paper Section 5)";
  let getenv_int name default =
    match Sys.getenv_opt name with Some v -> int_of_string v | None -> default
  in
  let out =
    Option.value (Sys.getenv_opt "NCG_BENCH_FULLGRID_OUT")
      ~default:"BENCH_fullgrid.json"
  in
  let n = getenv_int "NCG_BENCH_FULLGRID_N" 100 in
  let trials = getenv_int "NCG_BENCH_FULLGRID_TRIALS" 20 in
  let cells = Experiment.grid ~alphas:Experiment.paper_alphas ~ks:Experiment.paper_ks in
  let make_initial ~seed = Experiment.initial_tree ~seed ~n in
  let make_config (c : Experiment.cell) =
    config ~alpha:c.Experiment.alpha ~k:c.Experiment.k ()
  in
  let domains = max 2 (Domain.recommended_domain_count ()) in
  let t0 = Ncg_obs.Clock.now_ns () in
  let results =
    Experiment.sweep ~domains ~make_initial ~make_config ~cells ~trials
      ~seed:base_seed ()
  in
  let wall = Ncg_obs.Clock.ns_to_s (Ncg_obs.Clock.elapsed_ns ~since:t0) in
  let gc = Experiment.sweep_gc results in
  let total_words = Ncg_obs.Gc_stats.allocated_words gc in
  let per_cell_words = total_words /. fi (List.length cells) in
  let slowest =
    List.nth
      (List.sort
         (fun (a : Experiment.cell_result) b ->
           compare b.Experiment.wall_ns a.Experiment.wall_ns)
         results)
      0
  in
  Printf.printf "%-30s %d cells x %d trials, n=%d, %d domains\n" "grid"
    (List.length cells) trials n domains;
  Printf.printf "%-30s %.1fs\n" "wall" wall;
  Printf.printf "%-30s %.3g total, %.3g mean per cell\n" "allocated words"
    total_words per_cell_words;
  Printf.printf "%-30s alpha=%g k=%d (%.2fs)\n%!" "slowest cell"
    slowest.Experiment.cell.Experiment.alpha slowest.Experiment.cell.Experiment.k
    (Ncg_obs.Clock.ns_to_s slowest.Experiment.wall_ns);
  let module Json = Ncg_obs.Json in
  Json.to_file out
    (Json.Obj
       [
         ("schema", Json.String Ncg_obs.Schema.bench_fullgrid);
         ("seed", Json.Int base_seed);
         ("class", Json.String "tree");
         ("n", Json.Int n);
         ("trials", Json.Int trials);
         ("cells", Json.List (List.map bench_cell_json results));
         ( "totals",
           Json.Obj
             [
               ("wall_seconds", Json.Float wall);
               ("domains", Json.Int domains);
               ("counters", Ncg_obs.Metrics.to_json (Experiment.sweep_counters results));
               ("gc", Ncg_obs.Gc_stats.to_json gc);
             ] );
       ]);
  Printf.printf "wrote %s\n%!" out

(* --- Bechamel micro-benchmarks ------------------------------------------------------------ *)

let kernels () =
  section_header "kernels" "Bechamel micro-benchmarks of the hot kernels";
  let open Bechamel in
  let open Toolkit in
  (* Fixed inputs, built once. *)
  let rng = Ncg_prng.Rng.create 7 in
  let gnp = Ncg_gen.Erdos_renyi.connected rng ~n:100 ~p:0.1 ~max_attempts:1000 in
  let tree_strategy = Experiment.initial_tree ~seed:3 ~n:100 in
  let tree_graph = Strategy.graph tree_strategy in
  let view = Ncg.View.extract tree_strategy tree_graph ~k:5 0 in
  let mds_problem =
    {
      Ncg_solver.Dominating_set.graph = gnp;
      radius = 1;
      free_dominators = [];
      forbidden = [];
    }
  in
  let tests =
    [
      Test.make ~name:"bfs_gnp100"
        (Staged.stage (fun () -> Ncg_graph.Bfs.distances gnp 0));
      Test.make ~name:"diameter_tree100"
        (Staged.stage (fun () -> Metrics.diameter tree_graph));
      Test.make ~name:"view_extract_k5"
        (Staged.stage (fun () -> Ncg.View.extract tree_strategy tree_graph ~k:5 0));
      Test.make ~name:"mds_exact_gnp100"
        (Staged.stage (fun () ->
             Ncg_solver.Dominating_set.solve ~node_budget:50_000 mds_problem));
      Test.make ~name:"best_response_k5"
        (Staged.stage (fun () -> Ncg.Best_response.compute ~alpha:2.0 view));
      Test.make ~name:"girth_gnp100"
        (Staged.stage (fun () -> Ncg_graph.Girth.girth gnp));
    ]
  in
  let test = Test.make_grouped ~name:"ncg" ~fmt:"%s/%s" tests in
  let benchmark () =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw_results = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  (* Plain-text report: nanoseconds per run from the OLS estimate. *)
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | Some by_test ->
      Printf.printf "%-28s %16s\n" "kernel" "time/run";
      let rows =
        (Hashtbl.fold [@lint.allow "D3" "accumulated rows are List.sort-ed before printing"])
          (fun name ols acc -> (name, ols) :: acc)
          by_test []
      in
      List.iter
        (fun (name, ols) ->
          let time =
            match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
          in
          let pretty =
            if time > 1e9 then Printf.sprintf "%.2f s" (time /. 1e9)
            else if time > 1e6 then Printf.sprintf "%.2f ms" (time /. 1e6)
            else if time > 1e3 then Printf.sprintf "%.2f us" (time /. 1e3)
            else Printf.sprintf "%.0f ns" time
          in
          Printf.printf "%-28s %16s\n" name pretty)
        (List.sort compare rows)
  | None -> print_endline "no results?!"

(* --- Run-history JSONL --------------------------------------------------------------------- *)

(* One line per bench invocation, appended to BENCH_history.jsonl
   (override the path with NCG_BENCH_HISTORY): which sections ran and
   their wall seconds. `ncg_bench_diff --history FILE` prints the trend.
   Durations only — no wall-clock timestamps, so two runs of the same
   tree on the same machine produce comparable (not machine-unique)
   lines. *)

let history_schema = Ncg_obs.Schema.bench_history

let append_history entries =
  let path =
    Option.value (Sys.getenv_opt "NCG_BENCH_HISTORY") ~default:"BENCH_history.jsonl"
  in
  let module Json = Ncg_obs.Json in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 entries in
  let line =
    Json.Obj
      [
        ("schema", Json.String history_schema);
        ("smoke", Json.Bool (Sys.getenv_opt "NCG_BENCH_SMOKE" <> None));
        ( "sections",
          Json.Obj (List.map (fun (name, wall) -> (name, Json.Float wall)) entries) );
        ("total_seconds", Json.Float total);
      ]
  in
  Ncg_obs.Atomic_file.append_line path (Json.to_string line);
  Printf.printf "appended run summary to %s\n%!" path

(* --- Driver ---------------------------------------------------------------------------------- *)

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig89", fig89);
    ("fig10", fig10);
    ("lemma31", lemma31);
    ("lemma32", lemma32);
    ("thm312", thm312);
    ("thm42", thm42);
    ("tinypoa", tinypoa);
    ("robustness", robustness);
    ("modes", modes);
    ("sumdyn", sumdyn);
    ("ablation", ablation);
    ("experiment", experiment);
    ("fullgrid", fullgrid);
    ("kernels", kernels);
  ]

let run_timed (name, f) =
  let s0 = Ncg_obs.Clock.now_ns () in
  f ();
  let wall = Ncg_obs.Clock.ns_to_s (Ncg_obs.Clock.elapsed_ns ~since:s0) in
  Printf.printf "[section time: %.1fs]\n%!" wall;
  (name, wall)

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  match requested with
  | [ "list" ] -> List.iter (fun (name, _) -> print_endline name) sections
  | [] ->
      let t0 = Ncg_obs.Clock.now_ns () in
      let entries = List.map run_timed sections in
      Printf.printf "\nTotal: %.1fs\n"
        (Ncg_obs.Clock.ns_to_s (Ncg_obs.Clock.elapsed_ns ~since:t0));
      append_history entries
  | names ->
      let entries =
        List.map
          (fun name ->
            match List.assoc_opt name sections with
            | Some f -> run_timed (name, f)
            | None ->
                Printf.eprintf "unknown section %S (try: %s)\n" name
                  (String.concat ", " (List.map fst sections));
                exit 1)
          names
      in
      append_history entries
